//! Fixed-point radix-2 FFT (§V-A, Fig. 5, Table II).
//!
//! A decimation-in-time FFT on 16-bit complex data with Q15 twiddle
//! factors. Every addition and multiplication of the butterflies goes
//! through the [`ArithContext`]; a `>>1` block-floating scale per stage
//! keeps the data inside 16 bits (standard fixed-point FFT practice, and
//! the reason the paper can run it on 16-bit operators).

use crate::workload::{Workload, WorkloadRun};
use crate::{ArithContext, ExactCtx, OpCounts};
use apx_fixture::signal;
use apx_metrics::QualityScore;
use apx_operators::{SiteOps, SiteSpec};

/// Q15 fractional bits of the twiddle factors.
const TWIDDLE_FRAC: u32 = 15;

/// Call-site tag of the complex twiddle product.
pub const SITE_TWIDDLE: &str = "fft.twiddle";

/// Call-site tag of the butterfly combine with per-stage scaling.
pub const SITE_BUTTERFLY: &str = "fft.butterfly";

/// Declared call-sites of the FFT workload.
pub const SITES: &[SiteSpec] = &[
    SiteSpec {
        tag: SITE_TWIDDLE,
        ops: SiteOps::AddMul,
        summary: "complex twiddle product (4 muls + 2 combining adds per butterfly)",
    },
    SiteSpec {
        tag: SITE_BUTTERFLY,
        ops: SiteOps::Add,
        summary: "butterfly add/sub with per-stage >>1 scaling (4 adds per butterfly)",
    },
];

/// Precomputed Q15 twiddle table for an `n`-point FFT (`w_k = e^{-2πik/n}`,
/// `k < n/2`).
fn twiddles_q15(n: usize) -> Vec<(i64, i64)> {
    (0..n / 2)
        .map(|k| {
            let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            (
                // clamp to the signed Q15 range: cos(0)·2^15 = 32768 would
                // overflow a 16-bit operand and flip sign
                ((ang.cos() * f64::from(1 << TWIDDLE_FRAC)).round() as i64).clamp(-32_767, 32_767),
                ((ang.sin() * f64::from(1 << TWIDDLE_FRAC)).round() as i64).clamp(-32_767, 32_767),
            )
        })
        .collect()
}

/// In-place fixed-point radix-2 DIT FFT through an [`ArithContext`].
///
/// Data is complex Q15 (`re`/`im`), length a power of two. Each stage
/// halves the data (block floating point), so an `n`-point transform
/// scales the result by `1/n` relative to the textbook DFT.
///
/// # Panics
/// Panics if lengths differ or are not a power of two.
pub fn fft_fixed<C: ArithContext + ?Sized>(re: &mut [i64], im: &mut [i64], ctx: &mut C) {
    let n = re.len();
    assert_eq!(n, im.len(), "mismatched component lengths");
    assert!(
        n.is_power_of_two() && n >= 2,
        "length must be a power of two"
    );
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = ((i as u32).reverse_bits() >> (32 - bits)) as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let tw = twiddles_q15(n);
    let mut len = 2;
    while len <= n {
        let step = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let i = start + k;
                let j = i + len / 2;
                let (wr, wi) = tw[k * step];
                // t = w * x[j]   (4 mults + 2 adds, schoolbook)
                let prod_rr = ctx.mul_at(SITE_TWIDDLE, wr, re[j]) >> TWIDDLE_FRAC;
                let prod_ii = ctx.mul_at(SITE_TWIDDLE, wi, im[j]) >> TWIDDLE_FRAC;
                let prod_ri = ctx.mul_at(SITE_TWIDDLE, wr, im[j]) >> TWIDDLE_FRAC;
                let prod_ir = ctx.mul_at(SITE_TWIDDLE, wi, re[j]) >> TWIDDLE_FRAC;
                let tr = ctx.sub_at(SITE_TWIDDLE, prod_rr, prod_ii);
                let ti = ctx.add_at(SITE_TWIDDLE, prod_ri, prod_ir);
                // butterfly with per-stage >>1 scaling (4 adds)
                let (ur, ui) = (re[i], im[i]);
                re[i] = ctx.add_at(SITE_BUTTERFLY, ur, tr) >> 1;
                im[i] = ctx.add_at(SITE_BUTTERFLY, ui, ti) >> 1;
                re[j] = ctx.sub_at(SITE_BUTTERFLY, ur, tr) >> 1;
                im[j] = ctx.sub_at(SITE_BUTTERFLY, ui, ti) >> 1;
            }
        }
        len <<= 1;
    }
}

/// Result of one FFT run.
#[derive(Debug, Clone, PartialEq)]
pub struct FftResult {
    /// Real output.
    pub re: Vec<i64>,
    /// Imaginary output.
    pub im: Vec<i64>,
    /// PSNR against the exact-arithmetic fixed-point reference.
    pub score: QualityScore,
    /// Operations executed through the context.
    pub counts: OpCounts,
}

/// The paper's FFT workload: a 32-point transform on 16-bit random data,
/// with the exact-context output as the accuracy reference.
#[derive(Debug, Clone)]
pub struct FftFixture {
    input_re: Vec<i64>,
    input_im: Vec<i64>,
    ref_re: Vec<i64>,
    ref_im: Vec<i64>,
}

impl FftFixture {
    /// 32-point FFT fixture on a seeded uniform random Q15 signal
    /// (amplitude 1/4 full scale, the usual headroom choice).
    #[must_use]
    pub fn radix2_32(seed: u64) -> Self {
        FftFixture::new(32, seed)
    }

    /// Fixture with an arbitrary power-of-two size.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two ≥ 2.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "n must be a power of two");
        let (input_re, input_im) = signal::random_q15(n, 8_191, seed);
        let mut ref_re = input_re.clone();
        let mut ref_im = input_im.clone();
        let mut exact = ExactCtx::new();
        fft_fixed(&mut ref_re, &mut ref_im, &mut exact);
        FftFixture {
            input_re,
            input_im,
            ref_re,
            ref_im,
        }
    }

    /// Transform length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.input_re.len()
    }

    /// Whether the fixture is empty (never true; included for API
    /// completeness alongside [`FftFixture::len`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.input_re.is_empty()
    }

    /// Runs the FFT through `ctx`, scoring against the exact reference.
    pub fn run<C: ArithContext + ?Sized>(&self, ctx: &mut C) -> FftResult {
        ctx.reset_counts();
        let mut re = self.input_re.clone();
        let mut im = self.input_im.clone();
        fft_fixed(&mut re, &mut im, ctx);
        let reference: Vec<i64> = self.ref_re.iter().chain(&self.ref_im).copied().collect();
        let test: Vec<i64> = re.iter().chain(&im).copied().collect();
        let score = QualityScore::psnr(&reference, &test);
        FftResult {
            re,
            im,
            score,
            counts: ctx.counts(),
        }
    }
}

/// The registered FFT workload: an `n`-point transform (default the
/// paper's 32) on a seeded random Q15 signal, scored by output PSNR.
#[derive(Debug, Clone, Copy)]
pub struct FftWorkload {
    len: usize,
}

impl FftWorkload {
    /// Workload with an explicit transform length (power of two ≥ 2).
    #[must_use]
    pub fn new(len: usize) -> Self {
        assert!(len.is_power_of_two() && len >= 2, "power-of-two length");
        FftWorkload { len }
    }
}

impl Default for FftWorkload {
    /// The paper's 32-point configuration.
    fn default() -> Self {
        FftWorkload::new(32)
    }
}

impl Workload for FftWorkload {
    fn name(&self) -> &'static str {
        "fft"
    }

    /// Legacy fixture seed of the `fig5`/`table2` binaries.
    fn default_seed(&self) -> u64 {
        0xF17
    }

    fn fingerprint(&self) -> String {
        format!("fft/v1:len={}", self.len)
    }

    fn sites(&self) -> &'static [SiteSpec] {
        SITES
    }

    fn run(&self, seed: u64, ctx: &mut dyn ArithContext) -> WorkloadRun {
        let fixture = FftFixture::new(self.len, seed);
        let result = fixture.run(ctx);
        WorkloadRun {
            score: result.score,
            counts: result.counts,
            aux: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_operators::OperatorConfig;
    use apx_operators::OperatorCtx;

    #[test]
    fn exact_run_scores_infinite_psnr() {
        let fixture = FftFixture::radix2_32(1);
        let mut ctx = ExactCtx::new();
        let result = fixture.run(&mut ctx);
        assert_eq!(result.score, QualityScore::PsnrDb(f64::INFINITY));
    }

    #[test]
    fn op_counts_match_the_radix2_structure() {
        // n/2·log2(n) butterflies, each 4 muls and 6 adds.
        let fixture = FftFixture::radix2_32(1);
        let mut ctx = ExactCtx::new();
        let result = fixture.run(&mut ctx);
        let butterflies = 32 / 2 * 5;
        assert_eq!(result.counts.muls, 4 * butterflies);
        assert_eq!(result.counts.adds, 6 * butterflies);
    }

    #[test]
    fn fixed_point_fft_matches_float_reference_shape() {
        // Transform a pure tone: the energy must land in the right bin.
        let n = 32;
        let (re, im) = apx_fixture::signal::tone_mix_q15(n, &[(4.0, 8_000)]);
        let mut fre = re.clone();
        let mut fim = im.clone();
        let mut ctx = ExactCtx::new();
        fft_fixed(&mut fre, &mut fim, &mut ctx);
        let mag: Vec<f64> = fre
            .iter()
            .zip(&fim)
            .map(|(&r, &i)| ((r * r + i * i) as f64).sqrt())
            .collect();
        let peak = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(peak == 4 || peak == n - 4, "tone bin, got {peak}");
    }

    #[test]
    fn truncated_adders_degrade_psnr_monotonically() {
        let fixture = FftFixture::radix2_32(3);
        let psnr_of = |q: u32| {
            let mut ctx = OperatorCtx::with_adder(OperatorConfig::AddTrunc { n: 16, q }.build());
            fixture.run(&mut ctx).score.value()
        };
        let (hi, mid, lo) = (psnr_of(15), psnr_of(11), psnr_of(7));
        assert!(hi > mid && mid > lo, "psnr {hi} > {mid} > {lo} expected");
        assert!(hi > 40.0, "near-exact sizing must score high: {hi}");
    }

    #[test]
    fn approximate_adder_also_degrades_output() {
        let fixture = FftFixture::radix2_32(3);
        let mut ctx = OperatorCtx::with_adder(
            OperatorConfig::RcaApx {
                n: 16,
                m: 4,
                fa_type: apx_operators::FaType::Three,
            }
            .build(),
        );
        let result = fixture.run(&mut ctx);
        assert!(result.score.value() < 40.0);
    }
}
