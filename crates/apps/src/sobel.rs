//! 2-D Sobel edge detection through swappable arithmetic — the second
//! workload added purely via the [`Workload`]
//! abstraction.
//!
//! The classic 3×3 Sobel gradient pair over a seeded synthetic photo:
//! every kernel multiply and accumulate runs through the
//! [`ArithContext`], the gradient magnitude is the L1 approximation
//! `|gx| + |gy|` (its final addition also through the context), and the
//! resulting edge map is scored by MSSIM against the exact-arithmetic
//! edge map.

use crate::workload::{Workload, WorkloadRun};
use crate::{ArithContext, ExactCtx};
use apx_fixture::image::Image;
use apx_metrics::QualityScore;
use apx_operators::{SiteOps, SiteSpec};

/// The horizontal Sobel kernel (`gx`); `gy` is its transpose.
pub const SOBEL_X: [[i64; 3]; 3] = [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]];

/// Call-site tag of the gradient kernel convolutions.
pub const SITE_GRAD: &str = "sobel.grad";

/// Call-site tag of the L1 magnitude combine.
pub const SITE_MAG: &str = "sobel.mag";

/// Declared call-sites of the Sobel workload.
pub const SITES: &[SiteSpec] = &[
    SiteSpec {
        tag: SITE_GRAD,
        ops: SiteOps::AddMul,
        summary: "3x3 gradient kernel taps and accumulation (gx and gy)",
    },
    SiteSpec {
        tag: SITE_MAG,
        ops: SiteOps::Add,
        summary: "L1 magnitude |gx| + |gy| per interior pixel",
    },
];

/// Operand pre-scaling for the kernel taps: |tap| ≤ 2 scaled to ≤ 8192,
/// so a fixed-width (16-of-32) multiplier keeps the product information
/// (the same trick as the HEVC interpolation filter). The tap scale is
/// shifted back out right after each multiply; exact contexts are
/// bit-identical to the unscaled computation.
const TAP_SCALE: u32 = 12;
/// Operand pre-scaling for the 8-bit samples: ≤ 255 scaled to ≤ 4080.
/// This scale is **kept through the accumulation** (careful data sizing:
/// partial sums then span up to ±32 640, filling the 16-bit data-path
/// instead of idling in its bottom bits) and shifted out only for the
/// final 8-bit magnitude.
const SAMPLE_SCALE: u32 = 4;

/// One 3×3 kernel application through the context: multiplies by the
/// nonzero taps and accumulates in the sample-scaled domain (zero taps
/// cost nothing in hardware). The returned gradient carries
/// [`SAMPLE_SCALE`].
fn convolve3<C: ArithContext + ?Sized>(
    window: &[[i64; 3]; 3],
    kernel: &[[i64; 3]; 3],
    ctx: &mut C,
) -> i64 {
    let mut acc: Option<i64> = None;
    for (wrow, krow) in window.iter().zip(kernel) {
        for (&s, &t) in wrow.iter().zip(krow) {
            if t == 0 {
                continue;
            }
            let p = ctx.mul_at(SITE_GRAD, t << TAP_SCALE, s << SAMPLE_SCALE) >> TAP_SCALE;
            acc = Some(match acc {
                None => p,
                Some(a) => ctx.add_at(SITE_GRAD, a, p),
            });
        }
    }
    acc.unwrap_or(0)
}

/// Sobel edge map of `image` through `ctx`: per interior pixel the L1
/// gradient magnitude `min(|gx| + |gy|, 255)`; the one-pixel border is
/// left at zero in test and reference alike.
pub fn sobel_edges<C: ArithContext + ?Sized>(image: &Image, ctx: &mut C) -> Image {
    let (width, height) = (image.width(), image.height());
    let mut pixels = vec![0u8; width * height];
    let kernel_y = transpose(&SOBEL_X);
    for y in 1..height.saturating_sub(1) {
        for x in 1..width.saturating_sub(1) {
            let mut window = [[0i64; 3]; 3];
            for (r, row) in window.iter_mut().enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = i64::from(image.pixel(x + c - 1, y + r - 1));
                }
            }
            let gx = convolve3(&window, &SOBEL_X, ctx);
            let gy = convolve3(&window, &kernel_y, ctx);
            // combine in the scaled domain (|gx|+|gy| ≤ 2·16 320, still
            // inside 16 bits), unscale only for the stored 8-bit pixel
            let magnitude = ctx.add_at(SITE_MAG, gx.abs(), gy.abs()) >> SAMPLE_SCALE;
            pixels[y * width + x] = magnitude.clamp(0, 255) as u8;
        }
    }
    Image::from_pixels(width, height, pixels)
}

fn transpose(kernel: &[[i64; 3]; 3]) -> [[i64; 3]; 3] {
    let mut out = [[0i64; 3]; 3];
    for r in 0..3 {
        for c in 0..3 {
            out[r][c] = kernel[c][r];
        }
    }
    out
}

/// The registered Sobel workload: edge detection over a `size × size`
/// seeded synthetic photo, scored by MSSIM of the edge map against the
/// exact-arithmetic run.
#[derive(Debug, Clone, Copy)]
pub struct SobelWorkload {
    size: usize,
}

impl SobelWorkload {
    /// Workload over a `size × size` image (at least the 8-pixel SSIM
    /// window).
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size >= 8, "size must be at least the SSIM window (8)");
        SobelWorkload { size }
    }
}

impl Workload for SobelWorkload {
    fn name(&self) -> &'static str {
        "sobel"
    }

    fn default_seed(&self) -> u64 {
        0x50B
    }

    fn fingerprint(&self) -> String {
        format!("sobel/v1:size={}", self.size)
    }

    fn sites(&self) -> &'static [SiteSpec] {
        SITES
    }

    fn run(&self, seed: u64, ctx: &mut dyn ArithContext) -> WorkloadRun {
        let image = apx_fixture::image::synthetic_photo(self.size, self.size, seed);
        let mut exact = ExactCtx::new();
        let reference = sobel_edges(&image, &mut exact);
        ctx.reset_counts();
        let edges = sobel_edges(&image, ctx);
        WorkloadRun {
            score: QualityScore::mssim(reference.pixels(), edges.pixels(), self.size, self.size),
            counts: ctx.counts(),
            aux: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_operators::{FaType, OperatorConfig, OperatorCtx};

    #[test]
    fn flat_image_has_no_edges() {
        let image = Image::from_pixels(16, 16, vec![128u8; 256]);
        let mut ctx = ExactCtx::new();
        let edges = sobel_edges(&image, &mut ctx);
        assert!(edges.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    fn vertical_step_lights_up_the_boundary_column() {
        let mut pixels = vec![0u8; 16 * 16];
        for y in 0..16 {
            for x in 8..16 {
                pixels[y * 16 + x] = 200;
            }
        }
        let image = Image::from_pixels(16, 16, pixels);
        let mut ctx = ExactCtx::new();
        let edges = sobel_edges(&image, &mut ctx);
        // the two columns straddling the step carry the full response
        assert_eq!(edges.pixel(7, 8), 255);
        assert_eq!(edges.pixel(8, 8), 255);
        // far from the step: flat, no response
        assert_eq!(edges.pixel(3, 8), 0);
        assert_eq!(edges.pixel(13, 8), 0);
    }

    #[test]
    fn kernel_ops_are_counted_per_interior_pixel() {
        let image = apx_fixture::image::synthetic_photo(16, 16, 1);
        let mut ctx = ExactCtx::new();
        let _ = sobel_edges(&image, &mut ctx);
        let interior = 14u64 * 14;
        // per pixel: 2 kernels × (6 muls + 5 adds) + 1 magnitude add
        assert_eq!(ctx.counts().muls, interior * 12);
        assert_eq!(ctx.counts().adds, interior * 11);
    }

    #[test]
    fn exact_workload_run_scores_perfect_mssim() {
        let workload = SobelWorkload::new(32);
        let mut ctx = ExactCtx::new();
        let run = workload.run(9, &mut ctx);
        assert!((run.score.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn harsh_approximation_degrades_the_edge_map() {
        let workload = SobelWorkload::new(32);
        let mut gentle = OperatorCtx::for_config(&OperatorConfig::AddTrunc { n: 16, q: 14 });
        let mut harsh = OperatorCtx::for_config(&OperatorConfig::RcaApx {
            n: 16,
            m: 2,
            fa_type: FaType::Three,
        });
        let good = workload.run(9, &mut gentle).score;
        let bad = workload.run(9, &mut harsh).score;
        assert!(good > bad, "gentle {good} must beat harsh {bad}");
    }
}
