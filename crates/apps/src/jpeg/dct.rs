//! Fixed-point 8×8 DCT-II (the JPEG encoder core) and the exact inverse
//! used by the decode path.

use crate::ArithContext;

/// Call-site tag of the row pass of the 2-D DCT.
pub const SITE_DCT_ROW: &str = "jpeg.dct_row";

/// Call-site tag of the column pass of the 2-D DCT.
pub const SITE_DCT_COL: &str = "jpeg.dct_col";

/// Fractional bits of the Q-format DCT coefficient table.
pub const DCT_FRAC: u32 = 13;

/// Guard bits kept on the accumulator: products are rescaled to Q3 before
/// accumulation (fits the 16-bit data-path) and the final sum drops the
/// guard, keeping the truncation bias under one output LSB — the scaling
/// a careful fixed-point designer applies.
pub const DCT_GUARD: u32 = 3;

/// Q13 coefficients of the orthonormal 8-point DCT-II:
/// `C[u][x] = α(u)·cos((2x+1)uπ/16) / 2` with `α(0)=1/√2`, `α(u>0)=1`
/// (the 1/2 folds the √(2/N) normalization).
#[must_use]
pub fn dct8_coeffs_q13() -> [[i64; 8]; 8] {
    let mut c = [[0i64; 8]; 8];
    for (u, row) in c.iter_mut().enumerate() {
        for (x, v) in row.iter_mut().enumerate() {
            let alpha = if u == 0 { (1.0f64 / 2.0).sqrt() } else { 1.0 };
            let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            *v = (alpha * angle.cos() / 2.0 * f64::from(1 << DCT_FRAC)).round() as i64;
        }
    }
    c
}

/// One-dimensional 8-point DCT through the context, recorded at the
/// call-site `site` (row or column pass). Each product is rescaled to
/// Q(guard) before accumulation so that every addition fits the 16-bit
/// data-path, and the guard bits are dropped at the end.
pub fn dct8_fixed<C: ArithContext + ?Sized>(
    input: &[i64; 8],
    coeffs: &[[i64; 8]; 8],
    site: &'static str,
    ctx: &mut C,
) -> [i64; 8] {
    let mut out = [0i64; 8];
    for (u, coeff_row) in coeffs.iter().enumerate() {
        let mut acc = ctx.mul_at(site, coeff_row[0], input[0]) >> (DCT_FRAC - DCT_GUARD);
        for x in 1..8 {
            let p = ctx.mul_at(site, coeff_row[x], input[x]) >> (DCT_FRAC - DCT_GUARD);
            acc = ctx.add_at(site, acc, p);
        }
        out[u] = acc >> DCT_GUARD;
    }
    out
}

/// Two-dimensional 8×8 DCT (rows then columns), through the context.
pub fn dct8x8_fixed<C: ArithContext + ?Sized>(block: &[[i64; 8]; 8], ctx: &mut C) -> [[i64; 8]; 8] {
    let coeffs = dct8_coeffs_q13();
    let mut rows = [[0i64; 8]; 8];
    for (r, row) in block.iter().enumerate() {
        rows[r] = dct8_fixed(row, &coeffs, SITE_DCT_ROW, ctx);
    }
    let mut out = [[0i64; 8]; 8];
    for c in 0..8 {
        let col = [
            rows[0][c], rows[1][c], rows[2][c], rows[3][c], rows[4][c], rows[5][c], rows[6][c],
            rows[7][c],
        ];
        let t = dct8_fixed(&col, &coeffs, SITE_DCT_COL, ctx);
        for r in 0..8 {
            out[r][c] = t[r];
        }
    }
    out
}

/// Exact double-precision 8×8 inverse DCT for the decode/score path
/// (the decoder is not under test; the paper modifies only the encoder's
/// DCT operators).
#[must_use]
pub fn idct8x8_f64(block: &[[f64; 8]; 8]) -> [[f64; 8]; 8] {
    let mut out = [[0.0f64; 8]; 8];
    for (y, out_row) in out.iter_mut().enumerate() {
        for (x, px) in out_row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (u, row) in block.iter().enumerate() {
                for (v, &coef) in row.iter().enumerate() {
                    let au = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
                    let av = if v == 0 { (0.5f64).sqrt() } else { 1.0 };
                    acc += au * av / 4.0
                        * coef
                        * ((2.0 * y as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2.0 * x as f64 + 1.0) * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            *px = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactCtx;

    #[test]
    fn dc_of_flat_block_is_the_scaled_mean() {
        let block = [[100i64; 8]; 8];
        let mut ctx = ExactCtx::new();
        let out = dct8x8_fixed(&block, &mut ctx);
        // orthonormal 2-D DCT of a flat block: DC = 8 * value (α0² · 64/8)
        assert!((out[0][0] - 800).abs() <= 25, "DC={}", out[0][0]);
        // all AC terms near zero
        for (u, row) in out.iter().enumerate() {
            for (v, &coef) in row.iter().enumerate() {
                if u != 0 || v != 0 {
                    assert!(coef.abs() <= 4, "AC[{u}][{v}]={coef}");
                }
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // math-style [u][v][y][x] indexing
    fn fixed_dct_tracks_the_float_dct() {
        // pseudo-random block
        let mut block = [[0i64; 8]; 8];
        for (r, row) in block.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (((r * 37 + c * 101 + 13) % 255) as i64) - 128;
            }
        }
        let mut ctx = ExactCtx::new();
        let fixed = dct8x8_fixed(&block, &mut ctx);
        // float reference
        let mut float_in = [[0.0f64; 8]; 8];
        for r in 0..8 {
            for c in 0..8 {
                float_in[r][c] = block[r][c] as f64;
            }
        }
        // forward float DCT by transposed inverse relation: do it directly
        let mut float_out = [[0.0f64; 8]; 8];
        for u in 0..8 {
            for v in 0..8 {
                let mut acc = 0.0;
                for y in 0..8 {
                    for x in 0..8 {
                        let au = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
                        let av = if v == 0 { (0.5f64).sqrt() } else { 1.0 };
                        acc += au * av / 4.0
                            * float_in[y][x]
                            * ((2.0 * y as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0)
                                .cos()
                            * ((2.0 * x as f64 + 1.0) * v as f64 * std::f64::consts::PI / 16.0)
                                .cos();
                    }
                }
                float_out[u][v] = acc;
            }
        }
        for u in 0..8 {
            for v in 0..8 {
                assert!(
                    (fixed[u][v] as f64 - float_out[u][v]).abs() < 12.0,
                    "coef[{u}][{v}]: fixed {} vs float {:.2}",
                    fixed[u][v],
                    float_out[u][v]
                );
            }
        }
    }

    #[test]
    fn idct_inverts_the_float_dct_roundtrip() {
        let mut block = [[0i64; 8]; 8];
        for (r, row) in block.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (((r * 53 + c * 29) % 200) as i64) - 100;
            }
        }
        let mut ctx = ExactCtx::new();
        let coeffs = dct8x8_fixed(&block, &mut ctx);
        let mut as_float = [[0.0f64; 8]; 8];
        for r in 0..8 {
            for c in 0..8 {
                as_float[r][c] = coeffs[r][c] as f64;
            }
        }
        let back = idct8x8_f64(&as_float);
        for r in 0..8 {
            for c in 0..8 {
                assert!(
                    (back[r][c] - block[r][c] as f64).abs() < 12.0,
                    "pixel[{r}][{c}]: {} vs {}",
                    back[r][c],
                    block[r][c]
                );
            }
        }
    }
}
