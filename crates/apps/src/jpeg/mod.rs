//! JPEG encoder with pluggable DCT arithmetic (§V-B, Fig. 6).
//!
//! The pipeline is the baseline JPEG luminance path: 8×8 block split,
//! level shift, fixed-point 2-D DCT (**through the [`ArithContext`] — the
//! operators under test**), quality-scaled quantization, zigzag, DC
//! differential + AC run/size symbolization, canonical Huffman entropy
//! coding. A full decoder reverses the lossless back end and applies an
//! exact inverse DCT, so encoder variants can be compared by MSSIM on
//! decoded images exactly as in the paper.

mod dct;
mod entropy;
mod quant;

pub use dct::{
    dct8_coeffs_q13, dct8_fixed, dct8x8_fixed, idct8x8_f64, DCT_FRAC, SITE_DCT_COL, SITE_DCT_ROW,
};
pub use entropy::{
    amplitude_bits, amplitude_value, size_category, BitReader, BitWriter, HuffmanCode,
};
pub use quant::{quality_table, quantize, zigzag_order, LUMA_Q50};

use crate::workload::{Workload, WorkloadRun};
use crate::{ArithContext, ExactCtx, OpCounts};
use apx_fixture::image::Image;
use apx_metrics::QualityScore;
use apx_operators::{SiteOps, SiteSpec};

/// Declared call-sites of the JPEG workload.
pub const SITES: &[SiteSpec] = &[
    SiteSpec {
        tag: SITE_DCT_ROW,
        ops: SiteOps::AddMul,
        summary: "row pass of the 8x8 fixed-point DCT",
    },
    SiteSpec {
        tag: SITE_DCT_COL,
        ops: SiteOps::AddMul,
        summary: "column pass of the 8x8 fixed-point DCT",
    },
];

/// Encoded image plus everything needed to score the encoder variant.
#[derive(Debug, Clone)]
pub struct JpegResult {
    /// Entropy-coded stream (DC+AC symbol stream, canonical Huffman).
    pub bytes: Vec<u8>,
    /// Image reconstructed by the reference decoder.
    pub decoded: Image,
    /// Operations executed through the context (DCT only — the paper
    /// replaces only the DCT operators).
    pub counts: OpCounts,
}

/// The quantized coefficient blocks of an image (pre-entropy coding).
type CoeffBlocks = Vec<[[i64; 8]; 8]>;

/// The paper's JPEG workload: a synthetic-photo image encoded at a given
/// quality, with the exact-arithmetic pipeline as the MSSIM reference.
#[derive(Debug, Clone)]
pub struct JpegFixture {
    image: Image,
    quality: u32,
    reference: Image,
}

impl JpegFixture {
    /// Builds the fixture: `size × size` synthetic photo, quality-90
    /// encoding (the paper's setting), exact reference decoded once.
    ///
    /// # Panics
    /// Panics if `size` is not a positive multiple of 8 or `quality` is
    /// out of `1..=100`.
    #[must_use]
    pub fn synthetic(size: usize, quality: u32, seed: u64) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(8),
            "size must be a multiple of 8"
        );
        let image = apx_fixture::image::synthetic_photo(size, size, seed);
        let mut exact = ExactCtx::new();
        let reference = encode_decode(&image, quality, &mut exact).decoded;
        JpegFixture {
            image,
            quality,
            reference,
        }
    }

    /// The input image.
    #[must_use]
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Runs the encoder through `ctx` and returns the result together with
    /// the MSSIM against the exact-arithmetic encoding.
    pub fn run<C: ArithContext + ?Sized>(&self, ctx: &mut C) -> (JpegResult, QualityScore) {
        ctx.reset_counts();
        let result = encode_decode(&self.image, self.quality, ctx);
        let score = QualityScore::mssim(
            self.reference.pixels(),
            result.decoded.pixels(),
            self.image.width(),
            self.image.height(),
        );
        (result, score)
    }
}

/// The registered JPEG workload: a seeded synthetic photo encoded at a
/// fixed quality with the DCT running through the context, scored by
/// MSSIM of the decoded image against the exact-arithmetic encoding.
/// The entropy-coded stream length rides along as the `stream_bytes`
/// auxiliary output.
#[derive(Debug, Clone, Copy)]
pub struct JpegWorkload {
    size: usize,
    quality: u32,
}

impl JpegWorkload {
    /// Workload over a `size × size` image (positive multiple of 8) at
    /// `quality` in `1..=100`.
    #[must_use]
    pub fn new(size: usize, quality: u32) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(8),
            "size must be a multiple of 8"
        );
        assert!((1..=100).contains(&quality), "quality out of 1..=100");
        JpegWorkload { size, quality }
    }
}

impl Workload for JpegWorkload {
    fn name(&self) -> &'static str {
        "jpeg"
    }

    /// Legacy fixture seed of the `fig6` binary.
    fn default_seed(&self) -> u64 {
        0x1E7A
    }

    fn fingerprint(&self) -> String {
        format!("jpeg/v1:size={},quality={}", self.size, self.quality)
    }

    fn sites(&self) -> &'static [SiteSpec] {
        SITES
    }

    fn run(&self, seed: u64, ctx: &mut dyn ArithContext) -> WorkloadRun {
        let fixture = JpegFixture::synthetic(self.size, self.quality, seed);
        let (result, score) = fixture.run(ctx);
        WorkloadRun {
            score,
            counts: result.counts,
            aux: vec![("stream_bytes".to_owned(), result.bytes.len() as f64)],
        }
    }
}

/// Encodes `image` through `ctx` and immediately decodes the stream with
/// the reference decoder.
///
/// # Panics
/// Panics if the image dimensions are not multiples of 8.
pub fn encode_decode<C: ArithContext + ?Sized>(
    image: &Image,
    quality: u32,
    ctx: &mut C,
) -> JpegResult {
    let blocks = forward_blocks(image, quality, ctx);
    let bytes = entropy_encode(&blocks);
    let coeffs = entropy_decode(&bytes, blocks.len()).expect("self-produced stream must decode");
    let decoded = reconstruct(&coeffs, image.width(), image.height(), quality);
    JpegResult {
        bytes,
        decoded,
        counts: ctx.counts(),
    }
}

/// Level shift + DCT (through `ctx`) + quantization for every 8×8 block,
/// in raster order.
fn forward_blocks<C: ArithContext + ?Sized>(
    image: &Image,
    quality: u32,
    ctx: &mut C,
) -> CoeffBlocks {
    assert!(
        image.width().is_multiple_of(8) && image.height().is_multiple_of(8),
        "dimensions must be multiples of 8"
    );
    let qt = quant::quality_table(quality);
    let mut blocks = Vec::with_capacity(image.width() * image.height() / 64);
    for by in (0..image.height()).step_by(8) {
        for bx in (0..image.width()).step_by(8) {
            let mut block = [[0i64; 8]; 8];
            for (r, row) in block.iter_mut().enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = i64::from(image.pixel(bx + c, by + r)) - 128;
                }
            }
            let coeffs = dct::dct8x8_fixed(&block, ctx);
            let mut quantized = [[0i64; 8]; 8];
            for r in 0..8 {
                for c in 0..8 {
                    // heavily approximate DCT arithmetic can overshoot the
                    // entropy coder's 15-bit amplitude alphabet (DC diffs
                    // span twice the coefficient range); exact-arithmetic
                    // coefficients stay far below the bound
                    quantized[r][c] =
                        quant::quantize(coeffs[r][c], qt[r][c]).clamp(-16_383, 16_383);
                }
            }
            blocks.push(quantized);
        }
    }
    blocks
}

/// JPEG symbolization constants.
const EOB: u16 = 0x00;
const ZRL: u16 = 0xF0;

/// Symbolizes the blocks (DC differences + AC run/size) and Huffman-codes
/// them with per-image canonical tables (written compactly in the header).
fn entropy_encode(blocks: &CoeffBlocks) -> Vec<u8> {
    let zz = quant::zigzag_order();
    // pass 1: symbol statistics
    let mut dc_freq = vec![0u64; 16];
    let mut ac_freq = vec![0u64; 256];
    let mut prev_dc = 0i64;
    let mut symbolized: Vec<Vec<(u16, i64)>> = Vec::with_capacity(blocks.len());
    for block in blocks {
        let dc_diff = block[0][0] - prev_dc;
        prev_dc = block[0][0];
        let dc_size = entropy::size_category(dc_diff) as u16;
        dc_freq[dc_size as usize] += 1;
        let mut ac: Vec<(u16, i64)> = Vec::new();
        let mut run = 0u16;
        for &(r, c) in &zz[1..] {
            let v = block[r][c];
            if v == 0 {
                run += 1;
                continue;
            }
            while run >= 16 {
                ac.push((ZRL, 0));
                ac_freq[ZRL as usize] += 1;
                run -= 16;
            }
            let size = entropy::size_category(v) as u16;
            let sym = (run << 4) | size;
            ac.push((sym, v));
            ac_freq[sym as usize] += 1;
            run = 0;
        }
        if run > 0 {
            ac.push((EOB, 0));
            ac_freq[EOB as usize] += 1;
        }
        symbolized.push(ac);
    }
    // pass 2: emit
    let dc_code = entropy::HuffmanCode::from_frequencies(&dc_freq);
    let ac_code = entropy::HuffmanCode::from_frequencies(&ac_freq);
    let mut writer = entropy::BitWriter::new();
    write_code_table(&mut writer, &dc_freq);
    write_code_table(&mut writer, &ac_freq);
    let mut prev_dc = 0i64;
    for (block, ac) in blocks.iter().zip(&symbolized) {
        let dc_diff = block[0][0] - prev_dc;
        prev_dc = block[0][0];
        let dc_size = entropy::size_category(dc_diff);
        dc_code.encode(&mut writer, dc_size as u16);
        if dc_size > 0 {
            writer.put(entropy::amplitude_bits(dc_diff, dc_size), dc_size);
        }
        for &(sym, v) in ac {
            ac_code.encode(&mut writer, sym);
            let size = u32::from(sym & 0xF);
            if size > 0 {
                writer.put(entropy::amplitude_bits(v, size), size);
            }
        }
    }
    writer.finish()
}

/// Writes symbol frequencies as a crude table header (symbol count, then
/// `(symbol, 32-bit count)` pairs). A real JPEG would emit DHT segments;
/// the framing is irrelevant to the experiments, losslessness is not.
fn write_code_table(writer: &mut entropy::BitWriter, freqs: &[u64]) {
    let active: Vec<u16> = (0..freqs.len() as u16)
        .filter(|&s| freqs[s as usize] > 0)
        .collect();
    writer.put(active.len() as u32, 16);
    for &s in &active {
        writer.put(u32::from(s), 16);
        writer.put(freqs[s as usize] as u32, 32);
    }
}

fn read_code_table(reader: &mut entropy::BitReader<'_>, alphabet: usize) -> Option<Vec<u64>> {
    let count = reader.bits(16)? as usize;
    let mut freqs = vec![0u64; alphabet];
    for _ in 0..count {
        let sym = reader.bits(16)? as usize;
        let freq = u64::from(reader.bits(32)?);
        *freqs.get_mut(sym)? = freq;
    }
    Some(freqs)
}

/// Decodes the entropy stream back into quantized coefficient blocks.
#[must_use]
fn entropy_decode(bytes: &[u8], num_blocks: usize) -> Option<CoeffBlocks> {
    let zz = quant::zigzag_order();
    let mut reader = entropy::BitReader::new(bytes);
    let dc_freq = read_code_table(&mut reader, 16)?;
    let ac_freq = read_code_table(&mut reader, 256)?;
    let dc_code = entropy::HuffmanCode::from_frequencies(&dc_freq);
    let ac_code = entropy::HuffmanCode::from_frequencies(&ac_freq);
    let mut blocks = Vec::with_capacity(num_blocks);
    let mut prev_dc = 0i64;
    for _ in 0..num_blocks {
        let mut block = [[0i64; 8]; 8];
        let dc_size = u32::from(dc_code.decode(&mut reader)?);
        let dc_diff = if dc_size > 0 {
            entropy::amplitude_value(reader.bits(dc_size)?, dc_size)
        } else {
            0
        };
        prev_dc += dc_diff;
        block[0][0] = prev_dc;
        let mut pos = 1;
        while pos < 64 {
            let sym = ac_code.decode(&mut reader)?;
            if sym == EOB {
                break;
            }
            if sym == ZRL {
                pos += 16;
                continue;
            }
            let run = usize::from(sym >> 4);
            let size = u32::from(sym & 0xF);
            pos += run;
            if pos >= 64 {
                return None;
            }
            let (r, c) = zz[pos];
            block[r][c] = entropy::amplitude_value(reader.bits(size)?, size);
            pos += 1;
        }
        blocks.push(block);
    }
    Some(blocks)
}

/// Dequantizes and inverse-transforms the blocks into an image.
fn reconstruct(blocks: &CoeffBlocks, width: usize, height: usize, quality: u32) -> Image {
    let qt = quant::quality_table(quality);
    let mut pixels = vec![0u8; width * height];
    let blocks_x = width / 8;
    for (bi, block) in blocks.iter().enumerate() {
        let (bx, by) = ((bi % blocks_x) * 8, (bi / blocks_x) * 8);
        let mut deq = [[0.0f64; 8]; 8];
        for r in 0..8 {
            for c in 0..8 {
                deq[r][c] = (block[r][c] * qt[r][c]) as f64;
            }
        }
        let spatial = dct::idct8x8_f64(&deq);
        for (r, row) in spatial.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                pixels[(by + r) * width + bx + c] = (v + 128.0).clamp(0.0, 255.0) as u8;
            }
        }
    }
    Image::from_pixels(width, height, pixels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_operators::{FaType, OperatorConfig, OperatorCtx};

    #[test]
    fn exact_encoding_scores_perfect_mssim_against_itself() {
        let fixture = JpegFixture::synthetic(64, 90, 5);
        let mut ctx = ExactCtx::new();
        let (result, score) = fixture.run(&mut ctx);
        assert!((score.value() - 1.0).abs() < 1e-12);
        assert!(!result.bytes.is_empty());
    }

    #[test]
    fn quality_90_reconstruction_is_visually_close_to_the_source() {
        let fixture = JpegFixture::synthetic(64, 90, 5);
        let mut ctx = ExactCtx::new();
        let (result, _) = fixture.run(&mut ctx);
        let score_vs_source =
            apx_metrics::mssim(fixture.image().pixels(), result.decoded.pixels(), 64, 64);
        assert!(
            score_vs_source > 0.85,
            "q90 MSSIM vs source: {score_vs_source}"
        );
    }

    #[test]
    fn compressed_stream_is_smaller_than_raw() {
        let fixture = JpegFixture::synthetic(128, 90, 6);
        let mut ctx = ExactCtx::new();
        let (result, _) = fixture.run(&mut ctx);
        assert!(
            result.bytes.len() < 128 * 128,
            "stream {} bytes !< raw {}",
            result.bytes.len(),
            128 * 128
        );
    }

    #[test]
    fn dct_ops_are_counted() {
        let fixture = JpegFixture::synthetic(32, 90, 2);
        let mut ctx = ExactCtx::new();
        let (result, _) = fixture.run(&mut ctx);
        // 16 blocks * 16 1-D DCTs * 8 outputs * 8 muls
        assert_eq!(result.counts.muls, 16 * 16 * 64);
        assert_eq!(result.counts.adds, 16 * 16 * 8 * 7);
    }

    #[test]
    fn heavy_approximation_hurts_mssim() {
        let fixture = JpegFixture::synthetic(64, 90, 5);
        let mut gentle = OperatorCtx::with_adder(OperatorConfig::AddTrunc { n: 16, q: 15 }.build());
        let mut harsh = OperatorCtx::with_adder(
            OperatorConfig::RcaApx {
                n: 16,
                m: 2,
                fa_type: FaType::Three,
            }
            .build(),
        );
        let (_, good) = fixture.run(&mut gentle);
        let (_, bad) = fixture.run(&mut harsh);
        assert!(good > bad, "gentle {good} must beat harsh {bad}");
        assert!(
            good.value() > 0.9,
            "near-exact sizing keeps MSSIM high: {good}"
        );
    }
}
