//! Entropy coding back end: bit I/O, canonical Huffman, and the JPEG
//! baseline symbol scheme (DC size categories, AC run/size with EOB and
//! ZRL) — with a full decoder so the codec round-trips losslessly.
//!
//! We use per-image optimized (canonical) Huffman tables rather than the
//! Annex-K defaults — valid JPEG practice (custom DHT) and verifiable by
//! round-trip without an external golden decoder.

use std::collections::BinaryHeap;

/// MSB-first bit writer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    current: u8,
    filled: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `count` bits of `bits`, MSB first.
    ///
    /// # Panics
    /// Panics if `count > 32`.
    pub fn put(&mut self, bits: u32, count: u32) {
        assert!(count <= 32, "too many bits at once");
        for k in (0..count).rev() {
            self.current = (self.current << 1) | (((bits >> k) & 1) as u8);
            self.filled += 1;
            if self.filled == 8 {
                self.bytes.push(self.current);
                self.current = 0;
                self.filled = 0;
            }
        }
    }

    /// Pads with 1-bits to a byte boundary and returns the stream.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            let pad = 8 - self.filled;
            self.put((1 << pad) - 1, pad);
        }
        self.bytes
    }
}

/// MSB-first bit reader.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over a byte stream.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit; `None` at end of stream.
    pub fn bit(&mut self) -> Option<u32> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - self.pos % 8)) & 1;
        self.pos += 1;
        Some(u32::from(bit))
    }

    /// Reads `count` bits MSB-first; `None` at end of stream.
    pub fn bits(&mut self, count: u32) -> Option<u32> {
        let mut v = 0;
        for _ in 0..count {
            v = (v << 1) | self.bit()?;
        }
        Some(v)
    }
}

/// A canonical Huffman code over `u16` symbols.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// `(symbol, code_length)` sorted canonically.
    lengths: Vec<(u16, u32)>,
    /// Encoder map: symbol → (code, length).
    codes: Vec<Option<(u32, u32)>>,
    /// Decoder acceleration: for each code length `l`,
    /// `(first_code, base_index, count)` into `lengths`.
    decode_rows: Vec<(u32, usize, u32)>,
}

impl HuffmanCode {
    /// Builds an optimal prefix code from symbol frequencies
    /// (zero-frequency symbols get no code).
    ///
    /// # Panics
    /// Panics if no symbol has a nonzero frequency.
    #[must_use]
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let active: Vec<u16> = (0..freqs.len() as u16)
            .filter(|&s| freqs[s as usize] > 0)
            .collect();
        assert!(!active.is_empty(), "empty alphabet");
        // Huffman tree via a min-heap of (weight, node); node indices into
        // an arena of (left, right).
        #[derive(PartialEq, Eq)]
        struct Item(u64, usize);
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.cmp(&self.0).then(other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut arena: Vec<(Option<usize>, Option<usize>, Option<u16>)> = Vec::new();
        let mut heap = BinaryHeap::new();
        for &s in &active {
            arena.push((None, None, Some(s)));
            heap.push(Item(freqs[s as usize], arena.len() - 1));
        }
        if heap.len() == 1 {
            // single symbol: force one phantom partner so it gets length 1
            arena.push((None, None, None));
            heap.push(Item(0, arena.len() - 1));
        }
        while heap.len() > 1 {
            let Item(wa, a) = heap.pop().expect("len>1");
            let Item(wb, b) = heap.pop().expect("len>1");
            arena.push((Some(a), Some(b), None));
            heap.push(Item(wa + wb, arena.len() - 1));
        }
        let root = heap.pop().expect("root").1;
        // depth-first: collect symbol depths
        let mut lengths: Vec<(u16, u32)> = Vec::new();
        let mut stack = vec![(root, 0u32)];
        while let Some((node, depth)) = stack.pop() {
            let (l, r, sym) = arena[node];
            if let Some(s) = sym {
                lengths.push((s, depth.max(1)));
            }
            if let Some(l) = l {
                stack.push((l, depth + 1));
            }
            if let Some(r) = r {
                stack.push((r, depth + 1));
            }
        }
        HuffmanCode::from_lengths(freqs.len(), lengths)
    }

    fn from_lengths(alphabet: usize, mut lengths: Vec<(u16, u32)>) -> Self {
        // canonical ordering: by (length, symbol)
        lengths.sort_by_key(|&(s, l)| (l, s));
        let mut codes = vec![None; alphabet];
        {
            let mut code = 0u32;
            let mut prev_len = 0u32;
            for &(sym, len) in &lengths {
                code <<= len - prev_len;
                prev_len = len;
                codes[sym as usize] = Some((code, len));
                code += 1;
            }
        }
        // decoder acceleration rows per code length
        let max_len = lengths.last().map_or(0, |&(_, l)| l) as usize;
        let mut decode_rows = vec![(0u32, 0usize, 0u32); max_len + 1];
        let mut code = 0u32;
        let mut prev_len = 0u32;
        for (i, &(_, len)) in lengths.iter().enumerate() {
            code <<= len - prev_len;
            prev_len = len;
            let row = &mut decode_rows[len as usize];
            if row.2 == 0 {
                *row = (code, i, 1);
            } else {
                row.2 += 1;
            }
            code += 1;
        }
        HuffmanCode {
            lengths,
            codes,
            decode_rows,
        }
    }

    /// Encodes one symbol.
    ///
    /// # Panics
    /// Panics if the symbol has no code (zero training frequency).
    pub fn encode(&self, writer: &mut BitWriter, symbol: u16) {
        let (code, len) =
            self.codes[symbol as usize].unwrap_or_else(|| panic!("symbol {symbol} has no code"));
        writer.put(code, len);
    }

    /// Decodes one symbol; `None` at end of stream or on an invalid code.
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Option<u16> {
        let mut code = 0u32;
        let mut len = 0usize;
        loop {
            code = (code << 1) | reader.bit()?;
            len += 1;
            if len >= self.decode_rows.len() && len > 32 {
                return None;
            }
            if let Some(&(first, base, count)) = self.decode_rows.get(len) {
                if count > 0 && code >= first && code < first + count {
                    return Some(self.lengths[base + (code - first) as usize].0);
                }
            }
            if len > 32 {
                return None;
            }
        }
    }
}

/// JPEG size category of a value: the number of bits of `|v|`.
#[must_use]
pub fn size_category(v: i64) -> u32 {
    64 - v.unsigned_abs().leading_zeros()
}

/// JPEG amplitude encoding: positive values as-is, negative values as
/// `v - 1` in `size` bits (one's-complement style).
#[must_use]
pub fn amplitude_bits(v: i64, size: u32) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v - 1 + (1i64 << size)) as u32
    }
}

/// Inverse of [`amplitude_bits`].
#[must_use]
pub fn amplitude_value(bits: u32, size: u32) -> i64 {
    if size == 0 {
        return 0;
    }
    let v = i64::from(bits);
    if v < (1i64 << (size - 1)) {
        v + 1 - (1i64 << size)
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xAB, 8);
        w.put(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(3), Some(0b101));
        assert_eq!(r.bits(8), Some(0xAB));
        assert_eq!(r.bits(1), Some(1));
    }

    #[test]
    fn huffman_roundtrip_arbitrary_stream() {
        let mut freqs = vec![0u64; 16];
        let symbols: Vec<u16> = (0..2000u32)
            .map(|i| ((i * i + i / 3) % 16) as u16)
            .collect();
        for &s in &symbols {
            freqs[s as usize] += 1;
        }
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        for &s in &symbols {
            code.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(code.decode(&mut r), Some(s));
        }
    }

    #[test]
    fn huffman_is_shorter_than_fixed_width_for_skewed_sources() {
        let mut freqs = vec![0u64; 8];
        freqs[0] = 1000;
        freqs[1] = 50;
        freqs[2] = 10;
        freqs[3] = 5;
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        for _ in 0..1000 {
            code.encode(&mut w, 0);
        }
        for _ in 0..50 {
            code.encode(&mut w, 1);
        }
        let bytes = w.finish();
        // fixed 3-bit coding would need (1050*3)/8 = 394 bytes
        assert!(bytes.len() < 394 / 2, "got {} bytes", bytes.len());
    }

    #[test]
    fn single_symbol_alphabet_roundtrips() {
        let mut freqs = vec![0u64; 4];
        freqs[2] = 17;
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        for _ in 0..17 {
            code.encode(&mut w, 2);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for _ in 0..17 {
            assert_eq!(code.decode(&mut r), Some(2));
        }
    }

    #[test]
    fn amplitude_coding_roundtrips() {
        for v in -1000i64..=1000 {
            if v == 0 {
                continue;
            }
            let size = size_category(v);
            let bits = amplitude_bits(v, size);
            assert_eq!(amplitude_value(bits, size), v, "v={v}");
        }
    }

    #[test]
    fn size_categories_match_jpeg_spec() {
        assert_eq!(size_category(1), 1);
        assert_eq!(size_category(-1), 1);
        assert_eq!(size_category(2), 2);
        assert_eq!(size_category(-3), 2);
        assert_eq!(size_category(255), 8);
        assert_eq!(size_category(-255), 8);
    }
}
