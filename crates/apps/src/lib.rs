//! Application case studies of the paper (§V), written once against
//! [`ArithContext`] so that exact, carefully-sized fixed-point, and
//! approximate arithmetic can be swapped in without touching the
//! algorithms:
//!
//! * [`fft`] — 32-point radix-2 fixed-point FFT on 16-bit data (Fig. 5,
//!   Table II), scored by output PSNR.
//! * [`jpeg`] — JPEG encoder whose 8×8 DCT runs through the context
//!   (Fig. 6), scored by MSSIM of the decoded images; includes a real
//!   entropy-coding back end (zigzag, RLE, canonical Huffman) with a
//!   lossless round-trip decoder.
//! * [`hevc`] — HEVC fractional-position motion-compensation filtering
//!   with the standard 8-tap luma interpolation filters (Tables III/IV),
//!   scored by MSSIM.
//! * [`kmeans`] — K-means clustering whose distance computation runs
//!   through the context (Tables V/VI), scored by classification success
//!   rate.
//! * [`fir`] — 31-tap low-pass FIR filtering, scored by output SNR.
//! * [`sobel`] — 2-D Sobel edge detection, scored by edge-map MSSIM.
//!
//! All of them sit behind the [`workload`] subsystem: one [`Workload`]
//! trait (deterministic seeded inputs, a run through any context, a
//! unified [`QualityScore`]) and one registry addressable by name — a new
//! case study is one trait impl plus one registry entry, and the
//! engine-parallel, cache-aware sweep driver in `apx_core::appenergy`
//! plus the `apxperf app <name>` CLI come for free.
//!
//! The arithmetic-context machinery itself lives in [`apx_operators`] and
//! is re-exported here for convenience.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fft;
pub mod fir;
pub mod hevc;
pub mod jpeg;
pub mod kmeans;
pub mod sobel;
pub mod workload;

pub use apx_metrics::QualityScore;
pub use apx_operators::{
    ArithContext, CountingCtx, ExactCtx, HeteroCtx, OpCounts, OperatorCtx, SiteCounts, SiteMap,
    SiteOps, SiteSpec, DEFAULT_SITE,
};
pub use workload::{Workload, WorkloadEntry, WorkloadParams, WorkloadRun, WORKLOADS};
