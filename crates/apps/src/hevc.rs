//! HEVC fractional-position motion compensation (§V-C, Tables III/IV).
//!
//! Implements the standard HEVC luma interpolation: the three 8-tap
//! quarter/half/three-quarter-pel filters of the specification, applied
//! separably (horizontal pass then vertical pass) over a frame under a
//! block-wise motion field. Every multiply-accumulate runs through the
//! [`ArithContext`]; a prediction built with exact arithmetic is the
//! MSSIM reference.

use crate::workload::{Workload, WorkloadRun};
use crate::{ArithContext, ExactCtx, OpCounts};
use apx_fixture::image::Image;
use apx_fixture::motion::MotionField;
use apx_metrics::QualityScore;
use apx_operators::{SiteOps, SiteSpec};

/// Call-site tag of the horizontal interpolation pass.
pub const SITE_MC_H: &str = "hevc.mc_h";

/// Call-site tag of the vertical interpolation pass.
pub const SITE_MC_V: &str = "hevc.mc_v";

/// Declared call-sites of the HEVC motion-compensation workload.
pub const SITES: &[SiteSpec] = &[
    SiteSpec {
        tag: SITE_MC_H,
        ops: SiteOps::AddMul,
        summary: "horizontal 8-tap luma interpolation pass",
    },
    SiteSpec {
        tag: SITE_MC_V,
        ops: SiteOps::AddMul,
        summary: "vertical 8-tap luma interpolation pass",
    },
];

/// The HEVC luma interpolation filters indexed by fractional phase
/// (0 = integer, 1 = quarter, 2 = half, 3 = three-quarter).
/// Coefficients sum to 64 (6-bit normalization).
pub const LUMA_FILTERS: [[i64; 8]; 4] = [
    [0, 0, 0, 64, 0, 0, 0, 0],
    [-1, 4, -10, 58, 17, -5, 1, 0],
    [-1, 4, -11, 40, 40, -11, 4, -1],
    [0, 1, -5, 17, 58, -10, 4, -1],
];

/// Normalization shift after each filter pass.
const FILTER_SHIFT: u32 = 6;

/// Applies one 8-tap filter to a window of samples through the context:
/// multiplies by nonzero taps and accumulates (zero taps cost nothing in
/// hardware and are skipped, matching the integer-phase shortcut of real
/// decoders).
fn filter8<C: ArithContext + ?Sized>(
    samples: &[i64; 8],
    taps: &[i64; 8],
    site: &'static str,
    ctx: &mut C,
) -> i64 {
    // Operands are pre-scaled so their product occupies the upper half of
    // the 32-bit range: a fixed-width (16-of-32) multiplier then loses at
    // most ~2 units of the t·s term. Exact contexts are bit-identical to
    // the unscaled computation.
    const TAP_SCALE: u32 = 8; // taps ≤ 64  → ≤ 16384
    const SAMPLE_SCALE: u32 = 7; // samples ≤ 255·64 intermediate? no: ≤ 255 at pass 1, ≤ ~16320 handled below
    let mut acc: Option<i64> = None;
    for (&s, &t) in samples.iter().zip(taps) {
        if t == 0 {
            continue;
        }
        // saturate the scaled sample into the 16-bit operand range (the
        // second pass sees first-pass outputs up to ~2^14, so scale down
        // instead of up for those)
        let (scaled_s, shift_back) = if s.abs() <= 255 {
            (s << SAMPLE_SCALE, TAP_SCALE + SAMPLE_SCALE)
        } else {
            (s.clamp(-32_767, 32_767), TAP_SCALE)
        };
        let p = ctx.mul_at(site, t << TAP_SCALE, scaled_s) >> shift_back;
        acc = Some(match acc {
            None => p,
            Some(a) => ctx.add_at(site, a, p),
        });
    }
    let acc = acc.unwrap_or(0);
    // rounding offset then normalize (shifts are wiring, not operators)
    (acc + (1 << (FILTER_SHIFT - 1))) >> FILTER_SHIFT
}

/// Result of one motion-compensation run.
#[derive(Debug, Clone)]
pub struct McResult {
    /// The predicted frame.
    pub predicted: Image,
    /// Operations executed through the context.
    pub counts: OpCounts,
}

/// The paper's HEVC workload: a synthetic frame and a quarter-pel motion
/// field, with the exact-arithmetic prediction as MSSIM reference.
#[derive(Debug, Clone)]
pub struct McFixture {
    frame: Image,
    motion: MotionField,
    reference: Image,
}

impl McFixture {
    /// Builds a `size × size` fixture with 16-pixel blocks.
    ///
    /// # Panics
    /// Panics if `size` is not a positive multiple of 16.
    #[must_use]
    pub fn synthetic(size: usize, seed: u64) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(16),
            "size must be a multiple of 16"
        );
        let frame = apx_fixture::image::synthetic_photo(size, size, seed);
        let motion = apx_fixture::motion::motion_field(size, size, 16, seed.wrapping_add(1));
        let mut exact = ExactCtx::new();
        let reference = motion_compensate(&frame, &motion, &mut exact).predicted;
        McFixture {
            frame,
            motion,
            reference,
        }
    }

    /// The source frame.
    #[must_use]
    pub fn frame(&self) -> &Image {
        &self.frame
    }

    /// Runs motion compensation through `ctx`; returns the result and the
    /// MSSIM against the exact-arithmetic prediction.
    pub fn run<C: ArithContext + ?Sized>(&self, ctx: &mut C) -> (McResult, QualityScore) {
        ctx.reset_counts();
        let result = motion_compensate(&self.frame, &self.motion, ctx);
        let score = QualityScore::mssim(
            self.reference.pixels(),
            result.predicted.pixels(),
            self.frame.width(),
            self.frame.height(),
        );
        (result, score)
    }
}

/// The registered HEVC motion-compensation workload: a seeded synthetic
/// frame under a quarter-pel motion field, scored by MSSIM against the
/// exact-arithmetic prediction.
#[derive(Debug, Clone, Copy)]
pub struct McWorkload {
    size: usize,
}

impl McWorkload {
    /// Workload over a `size × size` frame (positive multiple of 16).
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(16),
            "size must be a multiple of 16"
        );
        McWorkload { size }
    }
}

impl Workload for McWorkload {
    fn name(&self) -> &'static str {
        "hevc"
    }

    /// Legacy fixture seed of the `table3`/`table4` binaries.
    fn default_seed(&self) -> u64 {
        0xEC
    }

    fn fingerprint(&self) -> String {
        format!("hevc/v1:size={}", self.size)
    }

    fn sites(&self) -> &'static [SiteSpec] {
        SITES
    }

    fn run(&self, seed: u64, ctx: &mut dyn ArithContext) -> WorkloadRun {
        let fixture = McFixture::synthetic(self.size, seed);
        let (result, score) = fixture.run(ctx);
        WorkloadRun {
            score,
            counts: result.counts,
            aux: Vec::new(),
        }
    }
}

/// Predicts a frame by fractional motion compensation: for every pixel,
/// samples the reference at `(x + dx/4, y + dy/4)` with the separable
/// 8-tap interpolation (horizontal, then vertical).
pub fn motion_compensate<C: ArithContext + ?Sized>(
    frame: &Image,
    motion: &MotionField,
    ctx: &mut C,
) -> McResult {
    let (width, height) = (frame.width(), frame.height());
    let mut pixels = vec![0u8; width * height];
    for y in 0..height {
        for x in 0..width {
            let (dx, dy) = motion.vector_at(x, y);
            let (ix, fx) = (dx.div_euclid(4) as isize, dx.rem_euclid(4) as usize);
            let (iy, fy) = (dy.div_euclid(4) as isize, dy.rem_euclid(4) as usize);
            let bx = x as isize + ix;
            let by = y as isize + iy;
            // horizontal pass: 8 rows of intermediate samples
            let mut inter = [0i64; 8];
            for (r, out) in inter.iter_mut().enumerate() {
                let sy = by + r as isize - 3;
                if fx == 0 {
                    *out = i64::from(frame.pixel_clamped(bx, sy));
                } else {
                    let mut window = [0i64; 8];
                    for (c, w) in window.iter_mut().enumerate() {
                        *w = i64::from(frame.pixel_clamped(bx + c as isize - 3, sy));
                    }
                    *out = filter8(&window, &LUMA_FILTERS[fx], SITE_MC_H, ctx);
                }
            }
            // vertical pass
            let value = if fy == 0 {
                inter[3]
            } else {
                filter8(&inter, &LUMA_FILTERS[fy], SITE_MC_V, ctx)
            };
            pixels[y * width + x] = value.clamp(0, 255) as u8;
        }
    }
    McResult {
        predicted: Image::from_pixels(width, height, pixels),
        counts: ctx.counts(),
    }
}

/// Operation counts of one fractionally-interpolated output pixel
/// (both phases fractional): used by the energy model of `apx-core`
/// (`16 − #zero-taps` multiplies and the matching adds per 2-pass pixel).
#[must_use]
pub fn ops_per_fractional_pixel() -> OpCounts {
    let mut ctx = ExactCtx::new();
    let samples = [0i64; 8];
    // horizontal: 8 intermediate rows with a quarter-pel filter
    for _ in 0..8 {
        let _ = filter8(&samples, &LUMA_FILTERS[1], SITE_MC_H, &mut ctx);
    }
    // vertical: one half-pel filter
    let _ = filter8(&samples, &LUMA_FILTERS[2], SITE_MC_V, &mut ctx);
    ctx.counts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_operators::{FaType, OperatorConfig, OperatorCtx};

    #[test]
    fn filters_are_normalized() {
        for taps in &LUMA_FILTERS {
            assert_eq!(taps.iter().sum::<i64>(), 64);
        }
    }

    #[test]
    fn integer_motion_is_a_pure_shift() {
        let frame = apx_fixture::image::synthetic_photo(32, 32, 9);
        let motion = MotionField {
            blocks_x: 2,
            blocks_y: 2,
            block_size: 16,
            vectors: vec![(8, 4); 4], // +2 px right, +1 px down, no fraction
        };
        let mut ctx = ExactCtx::new();
        let result = motion_compensate(&frame, &motion, &mut ctx);
        assert_eq!(result.counts.muls, 0, "integer phases use no filter");
        // interior pixels are plain copies
        assert_eq!(result.predicted.pixel(10, 10), frame.pixel(12, 11),);
    }

    #[test]
    fn half_pel_on_constant_area_preserves_value() {
        let frame = Image::from_pixels(32, 32, vec![77u8; 32 * 32]);
        let motion = MotionField {
            blocks_x: 2,
            blocks_y: 2,
            block_size: 16,
            vectors: vec![(2, 2); 4], // half-pel both axes
        };
        let mut ctx = ExactCtx::new();
        let result = motion_compensate(&frame, &motion, &mut ctx);
        // normalized filters reproduce constants exactly
        assert!(result.predicted.pixels().iter().all(|&p| p == 77));
        assert!(result.counts.muls > 0);
    }

    #[test]
    fn exact_context_scores_perfect_mssim() {
        let fixture = McFixture::synthetic(32, 4);
        let mut ctx = ExactCtx::new();
        let (_, score) = fixture.run(&mut ctx);
        assert!((score.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sized_adders_track_the_paper_quality_band() {
        // Table III: ADDt(16,10) reaches MSSIM ≈ 0.99 on the MC filter.
        let fixture = McFixture::synthetic(64, 4);
        let mut ctx = OperatorCtx::with_adder(OperatorConfig::AddTrunc { n: 16, q: 10 }.build());
        let (_, score) = fixture.run(&mut ctx);
        assert!(score.value() > 0.9, "ADDt(16,10) MSSIM {score}");
        // and a brutally approximate adder scores worse
        let mut harsh = OperatorCtx::with_adder(
            OperatorConfig::RcaApx {
                n: 16,
                m: 1,
                fa_type: FaType::Three,
            }
            .build(),
        );
        let (_, bad) = fixture.run(&mut harsh);
        assert!(bad < score, "harsh {bad} must be below sized {score}");
        assert!(bad.degradation() > score.degradation());
    }

    #[test]
    fn per_pixel_op_budget_matches_the_energy_model() {
        let ops = ops_per_fractional_pixel();
        // quarter-pel filter: 7 nonzero taps -> 7 muls + 6 adds per row;
        // half-pel: 8 taps -> 8 muls + 7 adds.
        assert_eq!(ops.muls, 8 * 7 + 8);
        assert_eq!(ops.adds, 8 * 6 + 7);
    }
}
