//! The APXPERF-RS execution engine: batched, multi-threaded runs of the
//! characterization hot loops with **thread-count-independent results**.
//!
//! The paper's flow pushes >10⁷ random vectors per operator through the
//! functional and gate-level models on a cluster; this crate provides the
//! workstation equivalent. Three pieces cooperate:
//!
//! * [`Engine`] — a handle over the vendored work-stealing thread pool.
//!   The worker count comes from the `APXPERF_THREADS` environment
//!   variable (falling back to the machine's available parallelism) or an
//!   explicit [`Engine::new`].
//! * [`plan_shards`] — splits a sample count into fixed-size shards. The
//!   plan depends **only on the total count**, never on the thread count.
//! * [`shard_seed`] — derives one independent RNG stream per
//!   (master seed, loop id, shard index) triple.
//!
//! Together these give the determinism guarantee the reports rely on:
//! every shard always processes the same samples with the same RNG
//! stream, and partial results are merged in shard order on the caller's
//! thread — so the output is **bit-identical for any thread count**, only
//! the wall-clock changes.
//!
//! # Example
//!
//! ```
//! use apx_engine::{plan_shards, shard_seed, Engine};
//!
//! let engine = Engine::new(4);
//! let shards = plan_shards(100_000);
//! let partials = engine.map_indexed(shards.len(), |i| {
//!     let shard = shards[i];
//!     let _stream = shard_seed(0xDA7E, 1, shard.index as u64);
//!     shard.len as u64 // stand-in for real per-shard work
//! });
//! // results arrive in shard order regardless of scheduling
//! assert_eq!(partials.iter().sum::<u64>(), 100_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Environment variable selecting the worker count for
/// [`Engine::from_env`] (and everything built on it, including the repro
/// binaries). Unset or unparsable values fall back to the machine's
/// available parallelism; `1` forces serial execution.
pub const THREADS_ENV: &str = "APXPERF_THREADS";

/// Samples per shard of the characterization loops. A fixed constant —
/// never derived from the thread count — so the shard plan, and with it
/// every per-shard RNG stream, is identical no matter how many workers
/// execute it. 8192 samples amortize task overhead thoroughly while
/// keeping >10 shards for the smallest default loop.
pub const SHARD_SAMPLES: usize = 8192;

/// Default samples per in-shard `eval_batch` call — how many operand
/// pairs the characterization loops hand to an operator's (bitsliced)
/// batch kernel at a time. Unlike [`SHARD_SAMPLES`] this is a **pure
/// wall-clock knob**: shard plans and RNG draw order never depend on it
/// (each shard draws its operands sequentially regardless of how they
/// are grouped into batches), so widening it amortizes the bitslice
/// transpose without moving a single reported bit. A regression test in
/// `tests/determinism_threads.rs` pins that invariance.
pub const EVAL_BATCH: usize = 4096;

/// Reads the `APXPERF_THREADS` override, falling back to the machine's
/// available parallelism. Always at least 1.
#[must_use]
pub fn default_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// One contiguous chunk of a sharded loop (see [`plan_shards`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Shard index, `0..num_shards`; also the per-shard RNG stream index.
    pub index: usize,
    /// First sample of the shard.
    pub start: usize,
    /// Number of samples in the shard.
    pub len: usize,
}

/// Splits `total` samples into [`SHARD_SAMPLES`]-sized shards (the last
/// shard takes the remainder). `total == 0` yields no shards.
///
/// The plan is a pure function of `total`: thread counts, pool state and
/// scheduling never influence it — that invariance is what makes sharded
/// reports bit-identical across machines.
#[must_use]
pub fn plan_shards(total: usize) -> Vec<Shard> {
    plan_shards_sized(total, SHARD_SAMPLES)
}

/// [`plan_shards`] with an explicit shard size (power-estimation loops
/// use smaller shards because each vector is far more expensive than an
/// error sample).
///
/// # Panics
/// Panics if `shard_samples` is 0.
#[must_use]
pub fn plan_shards_sized(total: usize, shard_samples: usize) -> Vec<Shard> {
    assert!(shard_samples > 0, "shard size must be positive");
    let mut shards = Vec::with_capacity(total.div_ceil(shard_samples));
    let mut start = 0;
    while start < total {
        let len = (total - start).min(shard_samples);
        shards.push(Shard {
            index: shards.len(),
            start,
            len,
        });
        start += len;
    }
    shards
}

/// Number of independent lane sub-streams a bitsliced 64-way simulation
/// shard carries: one per bit of a `u64` net word. Like
/// [`SHARD_SAMPLES`], this is part of the deterministic stream
/// decomposition — never derived from the thread count or batch width.
pub const SIM_LANES: usize = 64;

/// Splits the `total` samples of one shard across `lanes` lane
/// sub-streams: lane `l` carries `total / lanes` samples plus one of the
/// first `total % lanes` remainders, so lane lengths are non-increasing
/// and differ by at most one.
///
/// The decomposition is a pure function of `total` — thread counts and
/// batch widths never influence it — which is what lets a bitsliced
/// kernel and a per-lane scalar reference process the *same* sub-streams
/// and produce bit-identical results.
///
/// # Example
/// ```
/// let lens = apx_engine::plan_lanes(10, apx_engine::SIM_LANES);
/// assert_eq!(lens.iter().sum::<usize>(), 10);
/// assert_eq!(lens[0], 1);
/// assert_eq!(lens[10], 0);
/// ```
///
/// # Panics
/// Panics if `lanes` is 0.
#[must_use]
pub fn plan_lanes(total: usize, lanes: usize) -> Vec<usize> {
    assert!(lanes > 0, "lane count must be positive");
    let base = total / lanes;
    let rem = total % lanes;
    (0..lanes).map(|l| base + usize::from(l < rem)).collect()
}

/// Version counter of the sharding/seed-derivation scheme. Bump it
/// whenever [`SHARD_SAMPLES`], [`shard_seed`]'s mixing constants or the
/// shard-plan layout change: results would still be internally
/// consistent, but no longer comparable sample-for-sample with runs of
/// the previous scheme.
const SHARDING_VERSION: u64 = 1;

/// A stable fingerprint of the sharded-execution scheme, mixed into
/// content-addressed cache keys (see `apx_cache`): a cached report is
/// only valid for the exact shard plan and per-shard seed streams that
/// produced it, so any change to [`SHARD_SAMPLES`] or the private
/// `SHARDING_VERSION` counter silently invalidates every stale blob.
#[must_use]
pub fn sharding_fingerprint() -> u64 {
    shard_seed(SHARD_SAMPLES as u64, 0x5_4A8D, SHARDING_VERSION)
}

/// Derives the RNG seed of one shard stream: a splitmix64-style mix of
/// the master seed, a loop identifier (so the error, verification and
/// power loops draw from unrelated streams even under the same master
/// seed) and the shard index.
#[must_use]
pub fn shard_seed(master: u64, stream: u64, shard: u64) -> u64 {
    let mut z = master
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(shard.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The execution engine: a cheap, cloneable handle that runs indexed
/// parallel maps on the vendored work-stealing pool.
#[derive(Debug, Clone)]
pub struct Engine {
    pool: rayon::ThreadPool,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::from_env()
    }
}

impl Engine {
    /// Creates an engine with an explicit worker count (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("thread pool construction cannot fail");
        Engine { pool }
    }

    /// Creates an engine honouring `APXPERF_THREADS` (see
    /// [`default_threads`]).
    #[must_use]
    pub fn from_env() -> Self {
        Engine::new(default_threads())
    }

    /// A serial engine: one worker. Used inside already-parallel regions
    /// (e.g. each task of a config-level sweep) to avoid oversubscribing
    /// the machine with nested pools.
    #[must_use]
    pub fn single_threaded() -> Self {
        Engine::new(1)
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.current_num_threads()
    }

    /// Evaluates `f(0), f(1), …, f(count - 1)` on the pool and returns the
    /// results **in index order**, however the tasks were scheduled. This
    /// is the only primitive the sharded loops need: per-shard work runs
    /// concurrently, and the caller folds the ordered partials serially so
    /// floating-point merges are reproducible.
    ///
    /// # Example
    /// ```
    /// use apx_engine::Engine;
    ///
    /// let squares = Engine::new(4).map_indexed(5, |i| i * i);
    /// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    /// // same result on any engine — scheduling never leaks into output
    /// assert_eq!(squares, Engine::single_threaded().map_indexed(5, |i| i * i));
    /// ```
    ///
    /// # Panics
    /// Propagates panics from `f`: the pool catches the unwind, still
    /// drains the remaining tasks, and resumes the first panic after the
    /// barrier — so `map_indexed` panics rather than deadlocks or
    /// returns partial results.
    pub fn map_indexed<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        // With one worker (or one task) skip the pool entirely: same
        // results by construction, none of the dispatch overhead.
        if self.threads() == 1 || count == 1 {
            return (0..count).map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
        self.pool.scope(|s| {
            for (i, slot) in slots.iter().enumerate() {
                let f = &f;
                s.spawn(move |_| {
                    let value = f(i);
                    *slot.lock().unwrap() = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot mutexes are never poisoned")
                    .expect("scope barrier guarantees every slot is filled")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_is_thread_independent_and_covers_everything() {
        for total in [0usize, 1, 100, SHARD_SAMPLES, SHARD_SAMPLES + 1, 100_000] {
            let shards = plan_shards(total);
            let covered: usize = shards.iter().map(|s| s.len).sum();
            assert_eq!(covered, total);
            for (k, s) in shards.iter().enumerate() {
                assert_eq!(s.index, k);
                assert!(s.len > 0 && s.len <= SHARD_SAMPLES);
            }
            for pair in shards.windows(2) {
                assert_eq!(pair[0].start + pair[0].len, pair[1].start);
            }
        }
    }

    #[test]
    fn lane_plan_covers_everything_and_is_non_increasing() {
        for total in [0usize, 1, 63, 64, 65, 100, 256, 257] {
            let lens = plan_lanes(total, SIM_LANES);
            assert_eq!(lens.len(), SIM_LANES);
            assert_eq!(lens.iter().sum::<usize>(), total);
            for pair in lens.windows(2) {
                assert!(pair[0] >= pair[1]);
                assert!(pair[0] - pair[1] <= 1);
            }
        }
        assert_eq!(plan_lanes(7, 3), vec![3, 2, 2]);
    }

    #[test]
    fn shard_seeds_are_distinct_across_streams_and_shards() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..4 {
            for shard in 0..64 {
                assert!(seen.insert(shard_seed(0xDA7E_2017, stream, shard)));
            }
        }
        // and reproducible
        assert_eq!(shard_seed(1, 2, 3), shard_seed(1, 2, 3));
    }

    #[test]
    fn map_indexed_preserves_order_for_any_thread_count() {
        let expected: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1, 2, 8] {
            let engine = Engine::new(threads);
            assert_eq!(engine.threads(), threads);
            assert_eq!(engine.map_indexed(257, |i| i * i), expected);
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single() {
        let engine = Engine::new(4);
        assert_eq!(engine.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(engine.map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn map_indexed_panics_cleanly_instead_of_hanging() {
        let engine = Engine::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.map_indexed(64, |i| {
                assert!(i != 13, "shard failure");
                i
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
