//! Shared plumbing for the reproduction binaries: a tiny CLI argument
//! parser, aligned table printing, adder-family tagging and the
//! quick-vs-full characterizer presets.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §3 for the index) and accepts:
//!
//! * `--samples N` — error-characterization samples (default 100 000)
//! * `--vectors N` — gate-level power vectors (default 1 500)
//! * `--seed N` — master seed
//! * `--size N` — workload size where applicable (image edge, FFT length)
//! * `--threads N` — engine worker count (default: `APXPERF_THREADS`,
//!   else the machine's parallelism). Never changes any reported number —
//!   sharded seed streams make reports bit-identical across thread counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apx_cells::Library;
use apx_core::{Characterizer, CharacterizerSettings, Engine};
use apx_operators::OperatorConfig;
use std::collections::HashMap;

/// Parsed `--key value` command-line options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    map: HashMap<String, String>,
}

impl Options {
    /// Parses `std::env::args()`.
    #[must_use]
    pub fn from_env() -> Self {
        let mut map = HashMap::new();
        let mut args = std::env::args().skip(1);
        while let Some(key) = args.next() {
            if let Some(name) = key.strip_prefix("--") {
                if let Some(value) = args.next() {
                    map.insert(name.to_owned(), value);
                }
            }
        }
        Options { map }
    }

    /// Integer option with a default.
    #[must_use]
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.map
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// u64 option with a default.
    #[must_use]
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.map
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String option with a default.
    #[must_use]
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.map
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }
}

/// The standard characterizer settings used by the repro binaries.
#[must_use]
pub fn settings(opts: &Options) -> CharacterizerSettings {
    CharacterizerSettings {
        error_samples: opts.get_usize("samples", 100_000),
        verify_samples: 2_000,
        exhaustive_up_to_bits: 16,
        power_vectors: opts.get_usize("vectors", 1_500),
        seed: opts.get_u64("seed", 0xDA7E_2017),
    }
}

/// Builds the execution engine used by the repro binaries: `--threads N`
/// wins, otherwise `APXPERF_THREADS`/machine parallelism.
#[must_use]
pub fn engine(opts: &Options) -> Engine {
    match opts.get_usize("threads", 0) {
        0 => Engine::from_env(),
        n => Engine::new(n),
    }
}

/// Builds the standard characterizer used by the repro binaries.
#[must_use]
pub fn characterizer<'a>(lib: &'a Library, opts: &Options) -> Characterizer<'a> {
    Characterizer::new(lib)
        .with_settings(settings(opts))
        .with_engine(engine(opts))
}

/// Family tag of an adder configuration — matches the legend of
/// Figs. 3–6.
#[must_use]
pub fn family(config: &OperatorConfig) -> &'static str {
    match config {
        OperatorConfig::AddExact { .. } => "FxP-exact",
        OperatorConfig::AddTrunc { .. } => "FxP-trunc",
        OperatorConfig::AddRound { .. } => "FxP-round",
        OperatorConfig::Aca { .. } => "ACA",
        OperatorConfig::EtaIv { .. } => "ETAIV",
        OperatorConfig::EtaIi { .. } => "ETAII",
        OperatorConfig::RcaApx { fa_type, .. } => match fa_type {
            apx_operators::FaType::One => "RCAApx-1",
            apx_operators::FaType::Two => "RCAApx-2",
            apx_operators::FaType::Three => "RCAApx-3",
        },
        OperatorConfig::MulExact { .. } | OperatorConfig::MulBooth { .. } => "MUL-exact",
        OperatorConfig::MulTrunc { .. } => "MULt",
        OperatorConfig::MulRound { .. } => "MULr",
        OperatorConfig::Aam { .. } => "AAM",
        OperatorConfig::Abm { .. } => "ABM",
        OperatorConfig::AbmUncorrected { .. } => "ABMu",
    }
}

/// Prints an aligned table: `headers` then `rows`.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("{}", padded.join("  "));
    };
    line(headers.iter().map(|h| (*h).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a float compactly for table cells.
#[must_use]
pub fn fmt(v: f64, decimals: usize) -> String {
    if v == f64::NEG_INFINITY {
        "-inf".to_owned()
    } else if v == f64::INFINITY {
        "inf".to_owned()
    } else {
        format!("{v:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_tags_cover_the_sweeps() {
        for config in apx_core::sweeps::all_adders_16bit() {
            assert!(!family(&config).is_empty());
        }
    }

    #[test]
    fn fmt_handles_infinities() {
        assert_eq!(fmt(f64::INFINITY, 2), "inf");
        assert_eq!(fmt(f64::NEG_INFINITY, 2), "-inf");
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
