//! Criterion benchmark suite of the workspace (operators, netlist,
//! apps, ablations).
//!
//! The per-figure/per-table reproduction **binaries** that used to live
//! in `src/bin/` moved into the unified `apxperf` CLI (`crates/cli`):
//! what was `cargo run -p apx_bench --bin fig3_adders_mse` is now
//! `apxperf fig3`, with shared flag parsing, a `--format json|csv|tty`
//! switch and the content-addressed report cache underneath. This crate
//! now carries only the `benches/` targets, which measure the raw
//! compute paths and therefore bypass the cache by design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
