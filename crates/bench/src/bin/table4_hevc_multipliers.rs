//! Table IV — HEVC motion compensation with 16-bit fixed-width
//! multipliers (exact adders sized to the multiplier output).
//!
//! Paper: MULt(16,16) 99.918% / 3.77 pJ; AAM 99.909% / 6.48;
//! ABM 99.907% / 3.85.

use apx_apps::hevc::{ops_per_fractional_pixel, McFixture};
use apx_apps::OperatorCtx;
use apx_bench::{engine, fmt, print_table, settings, Options};
use apx_cells::Library;
use apx_core::{appenergy, sweeps};

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let size = opts.get_usize("size", 128);
    let fixture = McFixture::synthetic(size, opts.get_u64("seed", 0xEC));
    let per_pixel = ops_per_fractional_pixel();
    let configs = sweeps::multipliers_16bit();
    let models = appenergy::models_for_multipliers(&lib, settings(&opts), &configs, &engine(&opts));
    let mut rows = Vec::new();
    for (config, model) in configs.iter().zip(&models) {
        let mut ctx = OperatorCtx::new(None, Some(config.build()));
        let (_, mssim) = fixture.run(&mut ctx);
        rows.push(vec![
            config.to_string(),
            fmt(mssim * 100.0, 3),
            fmt(model.mult_pdp_pj, 4),
            fmt(model.adder_pdp_pj, 4),
            fmt(model.energy_pj(per_pixel), 3),
        ]);
    }
    println!("TABLE IV: HEVC MC filter, 16-bit multipliers (energy per fractional pixel)");
    print_table(
        &["operator", "MSSIM_%", "E_mul_pJ", "E_add_pJ", "total_pJ"],
        &rows,
    );
    println!();
    println!(
        "paper: MULt 99.918/2.49e-1/1.83e-2/3.77  AAM 99.909/4.42e-1/6.48  ABM 99.907/2.54e-1/3.85"
    );
}
