//! Figure 6 — energy of the DCT in JPEG encoding vs output MSSIM with
//! 16-bit adders (quality-90 encoding, synthetic photographic image).
//!
//! Expected shape: as for the FFT, the fixed-point versions are much more
//! energy-efficient at equal MSSIM thanks to the bits dropped during
//! calculation.

use apx_apps::jpeg::JpegFixture;
use apx_apps::OperatorCtx;
use apx_bench::{engine, family, fmt, print_table, settings, Options};
use apx_cells::Library;
use apx_core::{appenergy, sweeps};

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let size = opts.get_usize("size", 128);
    let fixture = JpegFixture::synthetic(size, 90, opts.get_u64("seed", 0x1E7A));
    let configs = sweeps::all_adders_16bit();
    let models = appenergy::models_for_adders(&lib, settings(&opts), &configs, &engine(&opts));
    let mut rows = Vec::new();
    for (config, model) in configs.iter().zip(&models) {
        let mut ctx = OperatorCtx::new(Some(config.build()), None);
        let (result, mssim) = fixture.run(&mut ctx);
        // per-block energy keeps numbers readable
        let blocks = (size / 8) * (size / 8);
        let energy_pj = model.energy_pj(result.counts) / blocks as f64;
        rows.push(vec![
            config.to_string(),
            family(config).to_owned(),
            fmt(mssim, 4),
            fmt(energy_pj, 3),
            result.bytes.len().to_string(),
        ]);
    }
    println!("FIG6: JPEG (q=90, {size}x{size}) MSSIM vs DCT energy per 8x8 block (pJ)");
    print_table(
        &["operator", "family", "MSSIM", "E_dct_pJ/blk", "stream_B"],
        &rows,
    );
}
