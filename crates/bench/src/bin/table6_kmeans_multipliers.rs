//! Table VI — K-means with 16-bit multipliers: MULt(16,16), AAM(16),
//! ABM variants, and the heavily pruned MULt(16,4) that the paper shows
//! is equivalent to its ABM's collapse (~10 % success).
//!
//! Paper: MULt(16,16) 99.84%/5.15e-1; AAM 99.43%/9.02e-1;
//! ABM 10.27%/5.27e-1; MULt(16,4) 10.87%/4.09e-1.

use apx_apps::kmeans::KmeansFixture;
use apx_apps::{OpCounts, OperatorCtx};
use apx_bench::{engine, fmt, print_table, settings, Options};
use apx_cells::Library;
use apx_core::appenergy;
use apx_operators::OperatorConfig;

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let sets = opts.get_usize("sets", 5);
    let pts = opts.get_usize("points", 500);
    let fixtures: Vec<KmeansFixture> = (0..sets)
        .map(|s| KmeansFixture::synthetic(10, pts, 100 + s as u64))
        .collect();
    let configs = [
        OperatorConfig::MulTrunc { n: 16, q: 16 },
        OperatorConfig::Aam { n: 16 },
        OperatorConfig::Abm { n: 16 },
        OperatorConfig::AbmUncorrected { n: 16 },
        OperatorConfig::MulTrunc { n: 16, q: 4 },
    ];
    let per_distance = OpCounts { adds: 3, muls: 2 };
    let models = appenergy::models_for_multipliers(&lib, settings(&opts), &configs, &engine(&opts));
    let mut rows = Vec::new();
    for (config, model) in configs.iter().zip(&models) {
        let mut success = 0.0;
        for fixture in &fixtures {
            let mut ctx = OperatorCtx::new(None, Some(config.build()));
            success += fixture.run(&mut ctx).success_rate;
        }
        success /= fixtures.len() as f64;
        rows.push(vec![
            config.to_string(),
            fmt(success * 100.0, 2),
            fmt(model.mult_pdp_pj, 4),
            fmt(model.adder_pdp_pj, 4),
            fmt(model.energy_pj(per_distance), 4),
        ]);
    }
    println!("TABLE VI: K-means, 16-bit multipliers (energy per distance computation)");
    print_table(
        &["operator", "success_%", "E_mul_pJ", "E_add_pJ", "total_pJ"],
        &rows,
    );
    println!();
    println!("paper: MULt(16,16) 99.84/5.15e-1  AAM 99.43/9.02e-1  ABM 10.27/5.27e-1  MULt(16,4) 10.87/4.09e-1");
}
