//! Table I — direct comparison of the 16-bit fixed-width multipliers:
//! MULt(16,16) vs AAM(16) vs ABM(16) (we add ABMu(16), the uncorrected
//! pruned-Booth instance that matches the catastrophic MSE the paper
//! reports for its ABM).
//!
//! Paper values (28nm FDSOI, 100 MHz):
//!   MULt(16,16): 0.273 mW, 0.91 ns, 0.249 pJ, 805 µm², −89.1 dB, 23.4 %
//!   AAM(16):     0.359 mW, 1.23 ns, 0.442 pJ, 665 µm², −87.9 dB, 27.7 %
//!   ABM(16):     0.446 mW, 0.57 ns, 0.446 pJ, 879 µm², −9.63 dB, 27.9 %

use apx_bench::{engine, fmt, print_table, settings, Options};
use apx_cells::Library;
use apx_core::sweeps;

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let configs = sweeps::multipliers_16bit();
    let reports = sweeps::characterize_all(&lib, settings(&opts), &configs, &engine(&opts));
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt(r.hw.power_mw, 4),
                fmt(r.hw.delay_ns, 2),
                fmt(r.hw.pdp_pj, 3),
                fmt(r.hw.area_um2, 1),
                fmt(r.error.mse_db, 2),
                fmt(r.error.ber * 100.0, 1),
                r.verified.to_string(),
            ]
        })
        .collect();
    println!("TABLE I: 16-bit fixed-width multipliers");
    print_table(
        &[
            "operator", "power_mW", "delay_ns", "PDP_pJ", "area_um2", "MSE_dB", "BER_%", "ok",
        ],
        &rows,
    );
    println!();
    println!("paper:   MULt 0.273/0.91/0.249/805/-89.1/23.4  AAM 0.359/1.23/0.442/665/-87.9/27.7  ABM 0.446/0.57/0.446/879/-9.63/27.9");
}
