//! Table V — K-means clustering success and distance-computation energy
//! with 16-bit adders, at the paper's two accuracy levels (~99 % and
//! ~86 %). 5 data sets of 5 000 points around 10 Gaussian centers; the
//! partner multiplier is sized to the adder width; energy is per distance
//! computation (3 adds + 2 muls).
//!
//! Paper: ADDt(16,11) 99.14%/2.03e-1 pJ vs ACA(16,12) 99.10%/5.13e-1;
//! ADDt(16,8) 86.00%/6.06e-2 vs ACA(16,8) 86.06%/5.08e-1 — careful sizing
//! is 2.5-8x cheaper at equal success.

use apx_apps::kmeans::KmeansFixture;
use apx_apps::{OpCounts, OperatorCtx};
use apx_bench::{engine, fmt, print_table, settings, Options};
use apx_cells::Library;
use apx_core::appenergy;
use apx_operators::{FaType, OperatorConfig};

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let sets = opts.get_usize("sets", 5);
    let pts = opts.get_usize("points", 500);
    let fixtures: Vec<KmeansFixture> = (0..sets)
        .map(|s| KmeansFixture::synthetic(10, pts, 100 + s as u64))
        .collect();
    let configs = [
        OperatorConfig::AddTrunc { n: 16, q: 11 },
        OperatorConfig::Aca { n: 16, p: 12 },
        OperatorConfig::EtaIv { n: 16, x: 4 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: FaType::Three,
        },
        OperatorConfig::AddTrunc { n: 16, q: 8 },
        OperatorConfig::Aca { n: 16, p: 8 },
        OperatorConfig::EtaIv { n: 16, x: 2 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 10,
            fa_type: FaType::One,
        },
    ];
    let per_distance = OpCounts { adds: 3, muls: 2 };
    let models = appenergy::models_for_adders(&lib, settings(&opts), &configs, &engine(&opts));
    let mut rows = Vec::new();
    for (config, model) in configs.iter().zip(&models) {
        let mut success = 0.0;
        for fixture in &fixtures {
            let mut ctx = OperatorCtx::new(Some(config.build()), None);
            success += fixture.run(&mut ctx).success_rate;
        }
        success /= fixtures.len() as f64;
        rows.push(vec![
            config.to_string(),
            fmt(success * 100.0, 2),
            fmt(model.adder_pdp_pj, 4),
            fmt(model.mult_pdp_pj, 4),
            fmt(model.energy_pj(per_distance), 4),
        ]);
    }
    println!("TABLE V: K-means, 16-bit adders (energy per distance computation)");
    print_table(
        &["operator", "success_%", "E_add_pJ", "E_mul_pJ", "total_pJ"],
        &rows,
    );
    println!();
    println!("paper: ADDt(16,11) 99.14/2.03e-1  ACA(16,12) 99.10/5.13e-1  ETAIV(16,4) 99.43/5.11e-1  RCAApx(16,6,3) 99.67/5.08e-1");
    println!("       ADDt(16,8)  86.00/6.06e-2  ACA(16,8)  86.06/5.08e-1  ETAIV(16,2) 63.25/5.05e-1  RCAApx(16,10,1) 87.29/5.11e-1");
}
