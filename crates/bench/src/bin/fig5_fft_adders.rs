//! Figure 5 — FFT-32 energy (eq. (1)) vs output PSNR with 16-bit
//! approximate/sized adders; exact multipliers are sized to the adder
//! width (the partner-operator rule).
//!
//! Expected shape: fixed-point truncation/rounding strictly dominates all
//! approximate adders — the sized data-path shrinks the (dominant)
//! multiplier energy.

use apx_apps::fft::FftFixture;
use apx_apps::OperatorCtx;
use apx_bench::{engine, family, fmt, print_table, settings, Options};
use apx_cells::Library;
use apx_core::{appenergy, sweeps};

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let fixture = FftFixture::radix2_32(opts.get_u64("seed", 0xF17));
    let configs = sweeps::all_adders_16bit();
    // energy models (two characterizations per config) in parallel across
    // configs; the lightweight fixture runs follow serially
    let models = appenergy::models_for_adders(&lib, settings(&opts), &configs, &engine(&opts));
    let mut rows = Vec::new();
    for (config, model) in configs.iter().zip(&models) {
        let mut ctx = OperatorCtx::new(Some(config.build()), None);
        let result = fixture.run(&mut ctx);
        let energy_pj = model.energy_pj(result.counts);
        rows.push(vec![
            config.to_string(),
            family(config).to_owned(),
            fmt(result.psnr_db, 2),
            fmt(energy_pj, 3),
            fmt(model.adder_pdp_pj * 1e3, 3),
            fmt(model.mult_pdp_pj * 1e3, 3),
        ]);
    }
    println!("FIG5: FFT-32 PSNR vs total PDP (pJ), partner multipliers sized to the adder");
    print_table(
        &[
            "operator", "family", "PSNR_dB", "E_fft_pJ", "E_add_fJ", "E_mul_fJ",
        ],
        &rows,
    );
}
