//! Figure 5 — FFT-32 energy (eq. (1)) vs output PSNR with 16-bit
//! approximate/sized adders; exact multipliers are sized to the adder
//! width (the partner-operator rule).
//!
//! Expected shape: fixed-point truncation/rounding strictly dominates all
//! approximate adders — the sized data-path shrinks the (dominant)
//! multiplier energy.

use apx_apps::fft::FftFixture;
use apx_apps::OperatorCtx;
use apx_bench::{characterizer, family, fmt, print_table, Options};
use apx_cells::Library;
use apx_core::{appenergy, sweeps};

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let mut chz = characterizer(&lib, &opts);
    let fixture = FftFixture::radix2_32(opts.get_u64("seed", 0xF17));
    let mut rows = Vec::new();
    for config in sweeps::all_adders_16bit() {
        let model = appenergy::model_for_adder(&mut chz, &config);
        let mut ctx = OperatorCtx::new(Some(config.build()), None);
        let result = fixture.run(&mut ctx);
        let energy_pj = model.energy_pj(result.counts);
        rows.push(vec![
            config.to_string(),
            family(&config).to_owned(),
            fmt(result.psnr_db, 2),
            fmt(energy_pj, 3),
            fmt(model.adder_pdp_pj * 1e3, 3),
            fmt(model.mult_pdp_pj * 1e3, 3),
        ]);
    }
    println!("FIG5: FFT-32 PSNR vs total PDP (pJ), partner multipliers sized to the adder");
    print_table(
        &[
            "operator", "family", "PSNR_dB", "E_fft_pJ", "E_add_fJ", "E_mul_fJ",
        ],
        &rows,
    );
}
