//! Table III — HEVC motion-compensation filter with 16-bit adders at the
//! paper's operating points; energy accounted per fractionally
//! interpolated pixel (14 adds + 16 muls across the two passes), with the
//! partner multiplier sized to the adder width.
//!
//! Paper: ADDt(16,10) 99.29% / 0.898 pJ; ACA(16,12) 96.45% / 4.20;
//! ETAIV(16,4) 98.02% / 4.17; RCAApx(16,6,3) 99.67% / 4.12 — the
//! approximate versions burn ~4.6x the energy.

use apx_apps::hevc::{ops_per_fractional_pixel, McFixture};
use apx_apps::OperatorCtx;
use apx_bench::{engine, fmt, print_table, settings, Options};
use apx_cells::Library;
use apx_core::appenergy;
use apx_operators::{FaType, OperatorConfig};

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let size = opts.get_usize("size", 128);
    let fixture = McFixture::synthetic(size, opts.get_u64("seed", 0xEC));
    let configs = [
        OperatorConfig::AddTrunc { n: 16, q: 10 },
        OperatorConfig::Aca { n: 16, p: 12 },
        OperatorConfig::EtaIv { n: 16, x: 4 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: FaType::Three,
        },
    ];
    let per_pixel = ops_per_fractional_pixel();
    let models = appenergy::models_for_adders(&lib, settings(&opts), &configs, &engine(&opts));
    let mut rows = Vec::new();
    for (config, model) in configs.iter().zip(&models) {
        let mut ctx = OperatorCtx::new(Some(config.build()), None);
        let (_, mssim) = fixture.run(&mut ctx);
        let total = model.energy_pj(per_pixel);
        rows.push(vec![
            config.to_string(),
            fmt(mssim * 100.0, 2),
            fmt(model.adder_pdp_pj, 4),
            fmt(model.mult_pdp_pj, 4),
            fmt(total, 3),
        ]);
    }
    println!("TABLE III: HEVC MC filter, 16-bit adders (energy per fractional pixel)");
    print_table(
        &["operator", "MSSIM_%", "E_add_pJ", "E_mul_pJ", "total_pJ"],
        &rows,
    );
    println!();
    println!("paper: ADDt(16,10) 99.29/1.39e-2/4.39e-2/0.898  ACA 96.45/.../2.49e-1/4.20  ETAIV 98.02/...  RCAApx 99.67/.../4.12");
}
