//! Figure 4 — BER vs power / delay / PDP / area for the same adders as
//! Fig. 3.
//!
//! Expected shape (paper §IV): on BER the picture flips — approximate
//! adders beat truncated/rounded fixed point, whose dropped output bits
//! are forced to zero and flip ~50 % of the time each.

use apx_bench::{engine, family, fmt, print_table, settings, Options};
use apx_cells::Library;
use apx_core::sweeps;

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let configs = sweeps::all_adders_16bit();
    let reports = sweeps::characterize_all(&lib, settings(&opts), &configs, &engine(&opts));
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&reports)
        .map(|(config, r)| {
            vec![
                r.name.clone(),
                family(config).to_owned(),
                fmt(r.error.ber, 4),
                fmt(r.hw.power_mw, 5),
                fmt(r.hw.delay_ns, 3),
                fmt(r.hw.pdp_pj * 1e3, 3),
                fmt(r.hw.area_um2, 1),
            ]
        })
        .collect();
    println!("FIG4: 16-bit adders, BER vs hardware cost");
    print_table(
        &[
            "operator", "family", "BER", "power_mW", "delay_ns", "PDP_fJ", "area_um2",
        ],
        &rows,
    );
}
