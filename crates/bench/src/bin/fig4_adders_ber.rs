//! Figure 4 — BER vs power / delay / PDP / area for the same adders as
//! Fig. 3.
//!
//! Expected shape (paper §IV): on BER the picture flips — approximate
//! adders beat truncated/rounded fixed point, whose dropped output bits
//! are forced to zero and flip ~50 % of the time each.

use apx_bench::{characterizer, family, fmt, print_table, Options};
use apx_cells::Library;
use apx_core::sweeps;

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let mut chz = characterizer(&lib, &opts);
    let mut rows = Vec::new();
    for config in sweeps::all_adders_16bit() {
        let r = chz.characterize(&config);
        rows.push(vec![
            r.name.clone(),
            family(&config).to_owned(),
            fmt(r.error.ber, 4),
            fmt(r.hw.power_mw, 5),
            fmt(r.hw.delay_ns, 3),
            fmt(r.hw.pdp_pj * 1e3, 3),
            fmt(r.hw.area_um2, 1),
        ]);
    }
    println!("FIG4: 16-bit adders, BER vs hardware cost");
    print_table(
        &[
            "operator", "family", "BER", "power_mW", "delay_ns", "PDP_fJ", "area_um2",
        ],
        &rows,
    );
}
