//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. AAM accumulation structure: ripple array (faithful) vs Wallace tree.
//! 2. ABM sign correction: corrected vs uncorrected pruning.
//! 3. Compression style on the exact multiplier (netlist substrate).
//! 4. Technology-node independence: fdsoi28 vs generic45 must agree on
//!    every qualitative ordering.

use apx_bench::{characterizer, fmt, print_table, Options};
use apx_cells::Library;
use apx_netlist::HwAnalyzer;
use apx_operators::{Aam, ApxOperator, OperatorConfig};

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let mut chz = characterizer(&lib, &opts);

    println!("ABLATION 1: AAM accumulation structure");
    let analyzer = HwAnalyzer::new(&lib);
    let array = analyzer.analyze(&Aam::new(16).netlist());
    let tree = analyzer.analyze(&Aam::new(16).with_tree_compression().netlist());
    print_table(
        &["structure", "area_um2", "delay_ns", "power_mW", "PDP_pJ"],
        &[
            vec![
                "ripple array".into(),
                fmt(array.area_um2, 1),
                fmt(array.delay_ns, 3),
                fmt(array.power_mw, 4),
                fmt(array.pdp_pj, 4),
            ],
            vec![
                "wallace tree".into(),
                fmt(tree.area_um2, 1),
                fmt(tree.delay_ns, 3),
                fmt(tree.power_mw, 4),
                fmt(tree.pdp_pj, 4),
            ],
        ],
    );

    println!();
    println!("ABLATION 2: ABM sign correction");
    let good = chz.characterize(&OperatorConfig::Abm { n: 16 });
    let bad = chz.characterize(&OperatorConfig::AbmUncorrected { n: 16 });
    print_table(
        &["variant", "MSE_dB", "BER", "area_um2", "PDP_pJ"],
        &[
            vec![
                good.name.clone(),
                fmt(good.error.mse_db, 2),
                fmt(good.error.ber, 3),
                fmt(good.hw.area_um2, 1),
                fmt(good.hw.pdp_pj, 4),
            ],
            vec![
                bad.name.clone(),
                fmt(bad.error.mse_db, 2),
                fmt(bad.error.ber, 3),
                fmt(bad.hw.area_um2, 1),
                fmt(bad.hw.pdp_pj, 4),
            ],
        ],
    );

    println!();
    println!("ABLATION 3: rounding vs truncation (ADDx(16,10))");
    let tr = chz.characterize(&OperatorConfig::AddTrunc { n: 16, q: 10 });
    let ro = chz.characterize(&OperatorConfig::AddRound { n: 16, q: 10 });
    print_table(
        &["variant", "MSE_dB", "bias", "area_um2", "PDP_pJ"],
        &[
            vec![
                tr.name.clone(),
                fmt(tr.error.mse_db, 2),
                fmt(tr.error.mean_error, 2),
                fmt(tr.hw.area_um2, 1),
                fmt(tr.hw.pdp_pj, 4),
            ],
            vec![
                ro.name.clone(),
                fmt(ro.error.mse_db, 2),
                fmt(ro.error.mean_error, 2),
                fmt(ro.hw.area_um2, 1),
                fmt(ro.hw.pdp_pj, 4),
            ],
        ],
    );

    println!();
    println!("ABLATION 4: node independence (ADDt(16,10) vs RCAApx(16,6,3))");
    // At operator level neither side dominates outright (the paper's own
    // observation); what must hold on BOTH nodes is the same qualitative
    // picture: FxP far more accurate, the wire-type RCAApx cheaper, and
    // the MSE gap orders of magnitude wide.
    let mut orderings = Vec::new();
    for lib in [Library::fdsoi28(), Library::generic45()] {
        let mut chz = characterizer(&lib, &opts);
        let fxp = chz.characterize(&OperatorConfig::AddTrunc { n: 16, q: 10 });
        let apx = chz.characterize(&OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: apx_operators::FaType::Three,
        });
        let ordering = (
            fxp.error.mse_db < apx.error.mse_db,
            fxp.hw.pdp_pj > apx.hw.pdp_pj,
        );
        println!(
            "  {}: FxP MSE {} dB / {} pJ vs RCAApx {} dB / {} pJ",
            lib.name(),
            fmt(fxp.error.mse_db, 1),
            fmt(fxp.hw.pdp_pj, 4),
            fmt(apx.error.mse_db, 1),
            fmt(apx.hw.pdp_pj, 4),
        );
        orderings.push(ordering);
    }
    let consistent = orderings.windows(2).all(|w| w[0] == w[1]);
    println!("  qualitative orderings identical across nodes: {consistent}");
}
