//! Bench baseline — a reduced-sample characterization sweep that times
//! every pipeline stage and emits `BENCH_baseline.json` (samples/sec per
//! stage), so CI can record the performance trajectory PR over PR.
//!
//! Stages:
//!
//! 1. `error_sampling` — sharded, batched functional error loop over a
//!    spread of adder/multiplier configs (samples = error samples drawn).
//! 2. `verification` — sharded random netlist-vs-model equivalence on a
//!    16-bit adder (samples = vectors checked).
//! 3. `power_vectors` — sharded event-driven power estimation on the same
//!    netlist (samples = vectors applied).
//! 4. `fig34_adder_sweep` — the full Figs. 3/4 16-bit adder family
//!    through `characterize_all` (samples = total error samples; the
//!    stage also covers verification + power for all 97 configs).
//!
//! Extra knobs: `--out PATH` (default `BENCH_baseline.json`).

use apx_bench::{engine, fmt, print_table, settings, Options};
use apx_cells::Library;
use apx_core::{sweeps, Characterizer};
use apx_netlist::power::{self, PowerSettings};
use apx_netlist::verify;
use apx_operators::{ApxOperator, OperatorConfig};
use serde::Serialize;
use std::time::Instant;

/// One timed stage of the baseline run.
#[derive(Debug, Serialize)]
struct StageRecord {
    stage: String,
    samples: u64,
    seconds: f64,
    samples_per_sec: f64,
}

/// The whole `BENCH_baseline.json` document.
#[derive(Debug, Serialize)]
struct Baseline {
    schema: String,
    threads: usize,
    error_samples: usize,
    power_vectors: usize,
    seed: u64,
    stages: Vec<StageRecord>,
    total_seconds: f64,
}

fn record(stages: &mut Vec<StageRecord>, stage: &str, samples: u64, start: Instant) {
    let seconds = start.elapsed().as_secs_f64();
    stages.push(StageRecord {
        stage: stage.to_owned(),
        samples,
        seconds,
        samples_per_sec: samples as f64 / seconds.max(1e-9),
    });
}

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    // reduced-sample defaults: this is a trend recorder, not a repro run
    let mut settings = settings(&opts);
    settings.error_samples = opts.get_usize("samples", 20_000);
    settings.power_vectors = opts.get_usize("vectors", 300);
    let engine = engine(&opts);
    let mut stages = Vec::new();
    let run_start = Instant::now();

    // 1. error sampling over a spread of operator families
    let error_configs = [
        OperatorConfig::AddTrunc { n: 16, q: 10 },
        OperatorConfig::Aca { n: 16, p: 8 },
        OperatorConfig::EtaIv { n: 16, x: 4 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: apx_operators::FaType::Three,
        },
        OperatorConfig::MulTrunc { n: 16, q: 16 },
        OperatorConfig::Abm { n: 16 },
    ];
    let chz = Characterizer::new(&lib)
        .with_settings(settings)
        .with_engine(engine.clone());
    let ops: Vec<Box<dyn ApxOperator>> = error_configs.iter().map(OperatorConfig::build).collect();
    let start = Instant::now();
    let mut drawn = 0u64;
    for op in &ops {
        drawn += chz.error_stats(op.as_ref()).samples();
    }
    record(&mut stages, "error_sampling", drawn, start);

    // 2. random equivalence verification on a 16-bit ACA netlist
    let op = OperatorConfig::Aca { n: 16, p: 8 }.build();
    let nl = op.netlist();
    let verify_samples = 10 * settings.error_samples / 4;
    let start = Instant::now();
    verify::verify_random2_with(&nl, verify_samples, settings.seed, &engine, |a, b| {
        op.eval_u(a, b)
    })
    .expect("ACA netlist must match its functional model");
    record(&mut stages, "verification", verify_samples as u64, start);

    // 3. event-driven power vectors on the same netlist
    let start = Instant::now();
    let report = power::estimate_with(
        &nl,
        &lib,
        PowerSettings {
            vectors: settings.power_vectors,
            seed: settings.seed,
        },
        &engine,
    );
    assert!(report.dynamic_power_mw > 0.0);
    record(
        &mut stages,
        "power_vectors",
        settings.power_vectors as u64,
        start,
    );

    // 4. the reduced-sample Figs. 3/4 sweep, end to end
    let configs = sweeps::all_adders_16bit();
    let start = Instant::now();
    let reports = sweeps::characterize_all(&lib, settings, &configs, &engine);
    let swept: u64 = reports.iter().map(|r| r.error.samples).sum();
    record(&mut stages, "fig34_adder_sweep", swept, start);
    assert!(reports.iter().all(|r| r.verified));

    let baseline = Baseline {
        schema: "apxperf-bench-baseline/v1".to_owned(),
        threads: engine.threads(),
        error_samples: settings.error_samples,
        power_vectors: settings.power_vectors,
        seed: settings.seed,
        stages,
        total_seconds: run_start.elapsed().as_secs_f64(),
    };

    println!(
        "BENCH baseline: {} threads, {} error samples, {} power vectors",
        baseline.threads, baseline.error_samples, baseline.power_vectors
    );
    let rows: Vec<Vec<String>> = baseline
        .stages
        .iter()
        .map(|s| {
            vec![
                s.stage.clone(),
                s.samples.to_string(),
                fmt(s.seconds, 3),
                fmt(s.samples_per_sec, 0),
            ]
        })
        .collect();
    print_table(&["stage", "samples", "seconds", "samples/sec"], &rows);

    let out = opts.get_str("out", "BENCH_baseline.json");
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!();
    println!("wrote {out}");
}
