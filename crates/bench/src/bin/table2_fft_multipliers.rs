//! Table II — FFT-32 accuracy and energy with 16-bit fixed-width
//! multipliers (exact 16-bit adders alongside).
//!
//! Paper: MULt(16,16) 53.88 dB / 0.249 pJ; AAM 59.66 dB / 0.442 pJ;
//! ABM −18.14 dB / 0.446 pJ.

use apx_apps::fft::FftFixture;
use apx_apps::OperatorCtx;
use apx_bench::{engine, fmt, print_table, settings, Options};
use apx_cells::Library;
use apx_core::{appenergy, sweeps};

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let fixture = FftFixture::radix2_32(opts.get_u64("seed", 0xF17));
    let configs = sweeps::multipliers_16bit();
    let models = appenergy::models_for_multipliers(&lib, settings(&opts), &configs, &engine(&opts));
    let mut rows = Vec::new();
    for (config, model) in configs.iter().zip(&models) {
        let mut ctx = OperatorCtx::new(None, Some(config.build()));
        let result = fixture.run(&mut ctx);
        rows.push(vec![
            config.to_string(),
            fmt(result.psnr_db, 2),
            fmt(model.mult_pdp_pj, 3),
            fmt(model.energy_pj(result.counts), 2),
        ]);
    }
    println!("TABLE II: FFT-32 with 16-bit fixed-width multipliers (exact adders)");
    print_table(&["operator", "PSNR_dB", "PDP_mul_pJ", "E_fft_pJ"], &rows);
    println!();
    println!("paper: MULt 53.88 dB / 0.249 pJ   AAM 59.66 / 0.442   ABM -18.14 / 0.446");
}
