//! Figure 3 — MSE vs power / delay / PDP / area for every 16-bit adder
//! (fixed-point truncated/rounded vs ACA / ETAIV / RCAApx).
//!
//! Expected shape (paper §IV): fixed-point operators dominate on power
//! and area at equal MSE except at very low accuracy; approximate adders
//! are faster but cannot reach high accuracy; ACA/RCAApx can undercut
//! FxP energy slightly at moderate accuracy.

use apx_bench::{engine, family, fmt, print_table, settings, Options};
use apx_cells::Library;
use apx_core::sweeps;

fn main() {
    let opts = Options::from_env();
    let lib = Library::fdsoi28();
    let configs = sweeps::all_adders_16bit();
    let reports = sweeps::characterize_all(&lib, settings(&opts), &configs, &engine(&opts));
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&reports)
        .map(|(config, r)| {
            vec![
                r.name.clone(),
                family(config).to_owned(),
                fmt(r.error.mse_db, 2),
                fmt(r.hw.power_mw, 5),
                fmt(r.hw.delay_ns, 3),
                fmt(r.hw.pdp_pj * 1e3, 3),
                fmt(r.hw.area_um2, 1),
                r.verified.to_string(),
            ]
        })
        .collect();
    println!("FIG3: 16-bit adders, MSE (dB, full-scale) vs hardware cost");
    print_table(
        &[
            "operator", "family", "MSE_dB", "power_mW", "delay_ns", "PDP_fJ", "area_um2", "ok",
        ],
        &rows,
    );
}
