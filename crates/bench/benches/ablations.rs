//! Ablation micro-benchmarks: the cost of the design alternatives called
//! out in DESIGN.md (array vs tree compression, corrected vs uncorrected
//! ABM) measured at the substrate level.

use apx_cells::Library;
use apx_netlist::HwAnalyzer;
use apx_operators::{Aam, ApxOperator, OperatorConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let lib = Library::fdsoi28();
    let analyzer = HwAnalyzer::new(&lib);

    c.bench_function("analyze_aam_array", |b| {
        let nl = Aam::new(16).netlist();
        b.iter(|| black_box(analyzer.analyze(&nl)))
    });
    c.bench_function("analyze_aam_tree", |b| {
        let nl = Aam::new(16).with_tree_compression().netlist();
        b.iter(|| black_box(analyzer.analyze(&nl)))
    });

    c.bench_function("abm_eval_corrected", |b| {
        let op = OperatorConfig::Abm { n: 16 }.build();
        let mut x = 7u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(op.eval_u((x >> 16) & 0xFFFF, (x >> 32) & 0xFFFF))
        })
    });
    c.bench_function("abm_eval_uncorrected", |b| {
        let op = OperatorConfig::AbmUncorrected { n: 16 }.build();
        let mut x = 7u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(op.eval_u((x >> 16) & 0xFFFF, (x >> 32) & 0xFFFF))
        })
    });
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
