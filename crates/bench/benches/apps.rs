//! Application-kernel throughput through exact and approximate contexts.

use apx_apps::fft::FftFixture;
use apx_apps::jpeg::dct8x8_fixed;
use apx_apps::kmeans::KmeansFixture;
use apx_apps::{ExactCtx, OperatorCtx};
use apx_operators::OperatorConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_apps(c: &mut Criterion) {
    let fft = FftFixture::radix2_32(1);
    c.bench_function("fft32_exact", |b| {
        let mut ctx = ExactCtx::new();
        b.iter(|| black_box(fft.run(&mut ctx)))
    });
    c.bench_function("fft32_trunc_adder", |b| {
        let mut ctx = OperatorCtx::with_adder(OperatorConfig::AddTrunc { n: 16, q: 10 }.build());
        b.iter(|| black_box(fft.run(&mut ctx)))
    });

    c.bench_function("dct8x8_exact", |b| {
        let mut ctx = ExactCtx::new();
        let block = [[37i64; 8]; 8];
        b.iter(|| black_box(dct8x8_fixed(&block, &mut ctx)))
    });

    let kmeans = KmeansFixture::synthetic(10, 50, 3).with_iterations(3);
    c.bench_function("kmeans_500pts_exact", |b| {
        b.iter(|| black_box(kmeans.run_exact()))
    });
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
