//! Functional-model throughput of every operator family (the hot path of
//! error characterization).

use apx_operators::{ApxOperator, FaType, OperatorConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_eval(c: &mut Criterion) {
    let ops: Vec<(&str, Box<dyn ApxOperator>)> = vec![
        ("add_exact_16", OperatorConfig::AddExact { n: 16 }.build()),
        (
            "add_trunc_16_10",
            OperatorConfig::AddTrunc { n: 16, q: 10 }.build(),
        ),
        ("aca_16_4", OperatorConfig::Aca { n: 16, p: 4 }.build()),
        ("etaiv_16_4", OperatorConfig::EtaIv { n: 16, x: 4 }.build()),
        (
            "rcaapx_16_6_3",
            OperatorConfig::RcaApx {
                n: 16,
                m: 6,
                fa_type: FaType::Three,
            }
            .build(),
        ),
        (
            "mul_trunc_16_16",
            OperatorConfig::MulTrunc { n: 16, q: 16 }.build(),
        ),
        ("aam_16", OperatorConfig::Aam { n: 16 }.build()),
        ("abm_16", OperatorConfig::Abm { n: 16 }.build()),
    ];
    let mut group = c.benchmark_group("eval_u");
    for (name, op) in &ops {
        group.bench_function(name, |b| {
            let mut x = 0x12345u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = (x >> 16) & 0xFFFF;
                let bb = (x >> 32) & 0xFFFF;
                black_box(op.eval_u(a, bb))
            })
        });
    }
    group.finish();
}

/// Batched-model throughput: one `eval_batch` call per iteration over a
/// 4096-sample batch (the engine's default in-shard width). Divide the
/// reported time by 4096 for per-sample cost; the ratio against the
/// matching `eval_u` entry is the speedup of the accelerated kernels
/// over the per-sample scalar path.
fn bench_eval_batch(c: &mut Criterion) {
    const BATCH: usize = 4096;
    let ops: Vec<(&str, Box<dyn ApxOperator>)> = vec![
        ("aca_16_4", OperatorConfig::Aca { n: 16, p: 4 }.build()),
        (
            "mul_trunc_16_16",
            OperatorConfig::MulTrunc { n: 16, q: 16 }.build(),
        ),
        ("mul_exact_16", OperatorConfig::MulExact { n: 16 }.build()),
        ("booth_16", OperatorConfig::MulBooth { n: 16 }.build()),
        ("aam_16", OperatorConfig::Aam { n: 16 }.build()),
        ("abm_16", OperatorConfig::Abm { n: 16 }.build()),
        (
            "mul_sized_16_10",
            OperatorConfig::MulSized {
                n: 16,
                w: 10,
                mode: apx_operators::QuantMode::Trunc,
            }
            .build(),
        ),
    ];
    let mut group = c.benchmark_group("eval_batch_4096");
    for (name, op) in &ops {
        let mask = apx_operators::mask_u(op.input_bits());
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        };
        let a: Vec<u64> = (0..BATCH).map(|_| next() & mask).collect();
        let bv: Vec<u64> = (0..BATCH).map(|_| next() & mask).collect();
        let mut out = vec![0u64; BATCH];
        group.bench_function(name, |b| {
            b.iter(|| {
                op.eval_batch(black_box(&a), black_box(&bv), &mut out);
                black_box(out[BATCH - 1])
            })
        });
    }
    group.finish();
}

fn bench_netlist_generation(c: &mut Criterion) {
    c.bench_function("netlist_gen_mult16", |b| {
        let op = OperatorConfig::MulTrunc { n: 16, q: 16 }.build();
        b.iter_batched(|| (), |()| black_box(op.netlist()), BatchSize::SmallInput)
    });
}

criterion_group!(
    benches,
    bench_eval,
    bench_eval_batch,
    bench_netlist_generation
);
criterion_main!(benches);
