//! Functional-model throughput of every operator family (the hot path of
//! error characterization).

use apx_operators::{ApxOperator, FaType, OperatorConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_eval(c: &mut Criterion) {
    let ops: Vec<(&str, Box<dyn ApxOperator>)> = vec![
        ("add_exact_16", OperatorConfig::AddExact { n: 16 }.build()),
        (
            "add_trunc_16_10",
            OperatorConfig::AddTrunc { n: 16, q: 10 }.build(),
        ),
        ("aca_16_4", OperatorConfig::Aca { n: 16, p: 4 }.build()),
        ("etaiv_16_4", OperatorConfig::EtaIv { n: 16, x: 4 }.build()),
        (
            "rcaapx_16_6_3",
            OperatorConfig::RcaApx {
                n: 16,
                m: 6,
                fa_type: FaType::Three,
            }
            .build(),
        ),
        (
            "mul_trunc_16_16",
            OperatorConfig::MulTrunc { n: 16, q: 16 }.build(),
        ),
        ("aam_16", OperatorConfig::Aam { n: 16 }.build()),
        ("abm_16", OperatorConfig::Abm { n: 16 }.build()),
    ];
    let mut group = c.benchmark_group("eval_u");
    for (name, op) in &ops {
        group.bench_function(name, |b| {
            let mut x = 0x12345u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = (x >> 16) & 0xFFFF;
                let bb = (x >> 32) & 0xFFFF;
                black_box(op.eval_u(a, bb))
            })
        });
    }
    group.finish();
}

fn bench_netlist_generation(c: &mut Criterion) {
    c.bench_function("netlist_gen_mult16", |b| {
        let op = OperatorConfig::MulTrunc { n: 16, q: 16 }.build();
        b.iter_batched(|| (), |()| black_box(op.netlist()), BatchSize::SmallInput)
    });
}

criterion_group!(benches, bench_eval, bench_netlist_generation);
criterion_main!(benches);
