//! Substrate throughput: 64-way logic simulation, STA and event-driven
//! power estimation on the 16×16 multiplier netlist.

use apx_cells::Library;
use apx_netlist::{power, sta, Sim64};
use apx_operators::OperatorConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let lib = Library::fdsoi28();
    let nl = OperatorConfig::MulTrunc { n: 16, q: 16 }.build().netlist();

    c.bench_function("sim64_mult16_64vectors", |b| {
        let mut sim = Sim64::new(&nl);
        let lanes: Vec<u64> = (0..64).map(|i| (i * 2654435761) & 0xFFFF).collect();
        b.iter(|| {
            sim.set_bus_lanes("a", &lanes);
            sim.set_bus_lanes("b", &lanes);
            sim.run();
            black_box(sim.read_bus_lanes("y", 64))
        })
    });

    c.bench_function("sta_mult16", |b| {
        b.iter(|| black_box(sta::analyze(&nl, &lib)))
    });

    c.bench_function("power_mult16_100vectors", |b| {
        b.iter(|| {
            black_box(power::estimate(
                &nl,
                &lib,
                power::PowerSettings {
                    vectors: 100,
                    seed: 1,
                },
            ))
        })
    });

    // The bitsliced kernel at full occupancy: 64 vectors = one per lane,
    // and a whole-shard run (256 vectors = 4 per lane), isolating the
    // per-event cost from lane-fill effects.
    let mut group = c.benchmark_group("power_vectors_64");
    for vectors in [64usize, 256] {
        group.bench_function(&format!("mult16_{vectors}vectors"), |b| {
            b.iter(|| {
                black_box(power::estimate(
                    &nl,
                    &lib,
                    power::PowerSettings { vectors, seed: 1 },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
