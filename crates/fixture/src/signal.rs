//! Q15 test signals for the FFT experiment.

use rand::{RngExt, SeedableRng};

/// Uniform random complex signal in Q15 (each component in
/// `[-amplitude, amplitude]`, `amplitude ≤ 32767`). Returns
/// `(real, imaginary)`.
///
/// # Example
/// ```
/// let (re, im) = apx_fixture::signal::random_q15(32, 8192, 5);
/// assert_eq!(re.len(), 32);
/// assert!(re.iter().chain(&im).all(|&v| v.abs() <= 8192));
/// ```
///
/// # Panics
/// Panics if `amplitude` exceeds the Q15 range.
#[must_use]
pub fn random_q15(len: usize, amplitude: i64, seed: u64) -> (Vec<i64>, Vec<i64>) {
    assert!((1..=32_767).contains(&amplitude), "amplitude out of Q15");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let draw = |rng: &mut rand::rngs::StdRng| {
        (0..len)
            .map(|_| {
                let u = rng.random::<f64>() * 2.0 - 1.0;
                (u * amplitude as f64) as i64
            })
            .collect()
    };
    (draw(&mut rng), draw(&mut rng))
}

/// A real mix of pure tones quantized to Q15:
/// `Σ amp·sin(2π·freq·t/len + phase)` for `(freq, amp_q15)` pairs.
/// Returns `(real, zero imaginary)`.
///
/// # Panics
/// Panics if the summed amplitude exceeds the Q15 range.
#[must_use]
pub fn tone_mix_q15(len: usize, tones: &[(f64, i64)]) -> (Vec<i64>, Vec<i64>) {
    let total: i64 = tones.iter().map(|&(_, a)| a.abs()).sum();
    assert!(total <= 32_767, "tone mix exceeds Q15 range");
    let re = (0..len)
        .map(|t| {
            tones
                .iter()
                .map(|&(freq, amp)| {
                    let phase = std::f64::consts::TAU * freq * t as f64 / len as f64;
                    (phase.sin() * amp as f64) as i64
                })
                .sum()
        })
        .collect();
    (re, vec![0; len])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_signal_is_deterministic() {
        assert_eq!(random_q15(64, 16000, 9), random_q15(64, 16000, 9));
    }

    #[test]
    fn tone_mix_is_bounded_and_periodic() {
        let (re, im) = tone_mix_q15(32, &[(4.0, 10_000), (9.0, 5_000)]);
        assert!(re.iter().all(|&v| v.abs() <= 15_000));
        assert!(im.iter().all(|&v| v == 0));
        // sin at t=0 is 0 for all tones
        assert_eq!(re[0], 0);
    }

    #[test]
    #[should_panic(expected = "exceeds Q15")]
    fn overdriven_mix_panics() {
        let _ = tone_mix_q15(8, &[(1.0, 20_000), (2.0, 20_000)]);
    }
}
