//! Deterministic synthetic workloads for the application experiments.
//!
//! The paper evaluates on assets we cannot redistribute (the Lena image,
//! HEVC test sequences) or that are inherently random (K-means point
//! clouds, FFT input signals). This crate generates seeded substitutes
//! with the statistics that matter for each experiment:
//!
//! * [`image::synthetic_photo`] — a natural-statistics grayscale image
//!   (smooth shading, hard edges, texture) for the JPEG/DCT and HEVC
//!   experiments. MSSIM comparisons are exact-vs-approx on the *same*
//!   image, so any photographic-statistics input exercises the identical
//!   code path (see DESIGN.md §1).
//! * [`clusters::gaussian_clusters`] — "5 sets of 5·10³ points generated
//!   around 10 random points with a Gaussian distribution" (§V-D).
//! * [`signal::random_q15`] / [`signal::tone_mix_q15`] — FFT input
//!   vectors in Q15.
//! * [`motion::MotionField`] — quarter-pel motion vectors for the HEVC
//!   motion-compensation experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clusters;
pub mod image;
pub mod motion;
pub mod signal;

pub(crate) fn box_muller(rng: &mut impl rand::RngExt) -> f64 {
    use std::f64::consts::PI;
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}
