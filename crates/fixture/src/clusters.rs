//! Gaussian point clouds for the K-means experiment (§V-D).

use crate::box_muller;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A labelled 2-D point cloud in 16-bit fixed-point coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointCloud {
    /// Point coordinates, each within the signed 16-bit range.
    pub points: Vec<[i64; 2]>,
    /// Ground-truth cluster index per point.
    pub labels: Vec<usize>,
    /// Ground-truth cluster centers.
    pub centers: Vec<[i64; 2]>,
}

/// Generates `num_clusters` Gaussian blobs of `points_per_cluster` points
/// each, in the signed 16-bit coordinate range (the paper runs distance
/// computation on 16-bit data).
///
/// Centers are kept apart by rejection sampling so the ground truth is
/// meaningful; `spread` is the per-axis standard deviation.
///
/// # Example
/// ```
/// let cloud = apx_fixture::clusters::gaussian_clusters(10, 500, 1500.0, 42);
/// assert_eq!(cloud.points.len(), 5000);
/// assert_eq!(cloud.centers.len(), 10);
/// assert!(cloud.points.iter().all(|p| p[0].abs() < 32768 && p[1].abs() < 32768));
/// ```
///
/// # Panics
/// Panics if `num_clusters` is 0 or `spread` is not positive.
#[must_use]
pub fn gaussian_clusters(
    num_clusters: usize,
    points_per_cluster: usize,
    spread: f64,
    seed: u64,
) -> PointCloud {
    gaussian_clusters_with_range(num_clusters, points_per_cluster, spread, 24_000.0, seed)
}

/// [`gaussian_clusters`] with an explicit half-range for the center
/// positions (useful to leave headroom for downstream fixed-point
/// subtraction, e.g. ±14 000 keeps all differences within 16 bits).
///
/// # Panics
/// Panics if `num_clusters` is 0, `spread` is not positive, or `range`
/// exceeds the 16-bit envelope.
#[must_use]
pub fn gaussian_clusters_with_range(
    num_clusters: usize,
    points_per_cluster: usize,
    spread: f64,
    range: f64,
    seed: u64,
) -> PointCloud {
    assert!(num_clusters > 0, "need at least one cluster");
    assert!(spread > 0.0, "spread must be positive");
    assert!(
        range > 0.0 && range <= 32_000.0,
        "range out of 16-bit envelope"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let min_sep = (4.5 * spread).min(2.0 * range / (num_clusters as f64).sqrt());

    let mut centers: Vec<[f64; 2]> = Vec::with_capacity(num_clusters);
    let mut attempts = 0;
    while centers.len() < num_clusters {
        let c = [
            (rng.random::<f64>() * 2.0 - 1.0) * range,
            (rng.random::<f64>() * 2.0 - 1.0) * range,
        ];
        attempts += 1;
        let far_enough = centers.iter().all(|o| {
            let (dx, dy) = (c[0] - o[0], c[1] - o[1]);
            (dx * dx + dy * dy).sqrt() > min_sep
        });
        if far_enough || attempts > 10_000 {
            centers.push(c);
        }
    }

    let mut points = Vec::with_capacity(num_clusters * points_per_cluster);
    let mut labels = Vec::with_capacity(num_clusters * points_per_cluster);
    for (label, center) in centers.iter().enumerate() {
        for _ in 0..points_per_cluster {
            let px = center[0] + box_muller(&mut rng) * spread;
            let py = center[1] + box_muller(&mut rng) * spread;
            points.push([
                px.clamp(-32_767.0, 32_767.0) as i64,
                py.clamp(-32_767.0, 32_767.0) as i64,
            ]);
            labels.push(label);
        }
    }
    PointCloud {
        points,
        labels,
        centers: centers.iter().map(|c| [c[0] as i64, c[1] as i64]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_correctly_sized() {
        let a = gaussian_clusters(10, 500, 1500.0, 7);
        let b = gaussian_clusters(10, 500, 1500.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.points.len(), 5000);
        assert_eq!(a.labels.len(), 5000);
    }

    #[test]
    fn points_cluster_around_their_centers() {
        let cloud = gaussian_clusters(5, 200, 1000.0, 3);
        for (point, &label) in cloud.points.iter().zip(&cloud.labels) {
            let c = cloud.centers[label];
            let d = (((point[0] - c[0]).pow(2) + (point[1] - c[1]).pow(2)) as f64).sqrt();
            assert!(d < 8.0 * 1000.0, "point {d} too far from its center");
        }
    }

    #[test]
    fn centers_are_separated() {
        let cloud = gaussian_clusters(10, 10, 1500.0, 11);
        for (i, a) in cloud.centers.iter().enumerate() {
            for b in cloud.centers.iter().skip(i + 1) {
                let d = (((a[0] - b[0]).pow(2) + (a[1] - b[1]).pow(2)) as f64).sqrt();
                assert!(d > 1000.0, "centers too close: {d}");
            }
        }
    }
}
