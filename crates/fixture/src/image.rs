//! Synthetic grayscale test images with photographic statistics.

use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Image {
    /// Creates an image from raw pixels (row-major).
    ///
    /// # Panics
    /// Panics if `pixels.len() != width * height`.
    #[must_use]
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major pixel buffer.
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[must_use]
    pub fn pixel(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Pixel with the coordinates clamped to the image borders (the edge
    /// extension used by interpolation filters).
    #[must_use]
    pub fn pixel_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[cy * self.width + cx]
    }

    /// Serializes to binary PGM (P5) for eyeballing results.
    #[must_use]
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }
}

/// Generates a deterministic grayscale image with natural-photo
/// statistics: low-frequency shading, a handful of hard-edged objects,
/// band-limited texture and mild vignetting.
///
/// # Example
/// ```
/// let img = apx_fixture::image::synthetic_photo(64, 64, 1);
/// assert_eq!(img.pixels().len(), 64 * 64);
/// // non-degenerate dynamic range
/// let min = img.pixels().iter().min().unwrap();
/// let max = img.pixels().iter().max().unwrap();
/// assert!(max - min > 100);
/// ```
///
/// # Panics
/// Panics if `width` or `height` is smaller than 16.
#[must_use]
pub fn synthetic_photo(width: usize, height: usize, seed: u64) -> Image {
    assert!(width >= 16 && height >= 16, "image too small");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut field = vec![0.0f64; width * height];

    // 1. smooth shading: sum of low-frequency cosine plane waves
    let waves: Vec<(f64, f64, f64, f64)> = (0..4)
        .map(|_| {
            (
                rng.random::<f64>() * 2.5 + 0.5,
                rng.random::<f64>() * 2.5 + 0.5,
                rng.random::<f64>() * std::f64::consts::TAU,
                rng.random::<f64>() * 40.0 + 15.0,
            )
        })
        .collect();
    for y in 0..height {
        for x in 0..width {
            let (fx, fy) = (x as f64 / width as f64, y as f64 / height as f64);
            let mut v = 128.0;
            for &(kx, ky, phase, amp) in &waves {
                v += amp * (std::f64::consts::TAU * (kx * fx + ky * fy) + phase).cos();
            }
            field[y * width + x] = v;
        }
    }

    // 2. hard-edged objects (ellipses and rectangles) for DCT/SSIM edges
    for _ in 0..6 {
        let cx = rng.random::<f64>() * width as f64;
        let cy = rng.random::<f64>() * height as f64;
        let rx = rng.random::<f64>() * width as f64 / 6.0 + 4.0;
        let ry = rng.random::<f64>() * height as f64 / 6.0 + 4.0;
        let delta = rng.random::<f64>() * 120.0 - 60.0;
        let rectangular = rng.random::<bool>();
        for y in 0..height {
            for x in 0..width {
                let dx = (x as f64 - cx) / rx;
                let dy = (y as f64 - cy) / ry;
                let inside = if rectangular {
                    dx.abs() < 1.0 && dy.abs() < 1.0
                } else {
                    dx * dx + dy * dy < 1.0
                };
                if inside {
                    field[y * width + x] += delta;
                }
            }
        }
    }

    // 3. band-limited texture: white noise box-blurred once
    let noise: Vec<f64> = (0..width * height)
        .map(|_| (rng.random::<f64>() - 0.5) * 36.0)
        .collect();
    for y in 1..height - 1 {
        for x in 1..width - 1 {
            let mut acc = 0.0;
            for dy in 0..3 {
                for dx in 0..3 {
                    acc += noise[(y + dy - 1) * width + (x + dx - 1)];
                }
            }
            field[y * width + x] += acc / 9.0;
        }
    }

    // 4. vignette and quantization to u8
    let pixels = field
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let (x, y) = (i % width, i / width);
            let dx = (x as f64 / width as f64) - 0.5;
            let dy = (y as f64 / height as f64) - 0.5;
            let vignette = 1.0 - 0.35 * (dx * dx + dy * dy);
            (v * vignette).clamp(0.0, 255.0) as u8
        })
        .collect();
    Image::from_pixels(width, height, pixels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_photo(64, 48, 42);
        let b = synthetic_photo(64, 48, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_images() {
        let a = synthetic_photo(32, 32, 1);
        let b = synthetic_photo(32, 32, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn image_has_photo_like_statistics() {
        let img = synthetic_photo(128, 128, 7);
        let px = img.pixels();
        let mean: f64 = px.iter().map(|&p| f64::from(p)).sum::<f64>() / px.len() as f64;
        assert!((40.0..220.0).contains(&mean), "mean {mean}");
        // neighbouring pixels must correlate (natural images do)
        let mut same = 0.0;
        let mut count = 0.0;
        for y in 0..img.height() {
            for x in 1..img.width() {
                let d = f64::from(img.pixel(x, y)) - f64::from(img.pixel(x - 1, y));
                same += d * d;
                count += 1.0;
            }
        }
        let neighbour_mse = same / count;
        assert!(
            neighbour_mse < 1000.0,
            "horizontal neighbour MSE too high: {neighbour_mse}"
        );
    }

    #[test]
    fn clamped_access_extends_borders() {
        let img = synthetic_photo(16, 16, 3);
        assert_eq!(img.pixel_clamped(-5, -5), img.pixel(0, 0));
        assert_eq!(img.pixel_clamped(100, 8), img.pixel(15, 8));
    }

    #[test]
    fn pgm_header_is_wellformed() {
        let img = synthetic_photo(16, 16, 3);
        let pgm = img.to_pgm();
        assert!(pgm.starts_with(b"P5\n16 16\n255\n"));
        assert_eq!(pgm.len(), 13 + 256);
    }
}
