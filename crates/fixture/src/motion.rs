//! Quarter-pel motion fields for the HEVC motion-compensation experiment.

use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A block-wise translational motion field in quarter-pel units.
///
/// `vectors[by * blocks_x + bx]` is the `(dx, dy)` motion of block
/// `(bx, by)`; fractional parts (`dx & 3`, `dy & 3`) select the HEVC
/// interpolation filter phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MotionField {
    /// Blocks per row.
    pub blocks_x: usize,
    /// Blocks per column.
    pub blocks_y: usize,
    /// Block edge in pixels.
    pub block_size: usize,
    /// Motion vectors in quarter-pel units.
    pub vectors: Vec<(i32, i32)>,
}

impl MotionField {
    /// Motion vector of the block containing pixel `(x, y)`.
    #[must_use]
    pub fn vector_at(&self, x: usize, y: usize) -> (i32, i32) {
        let bx = (x / self.block_size).min(self.blocks_x - 1);
        let by = (y / self.block_size).min(self.blocks_y - 1);
        self.vectors[by * self.blocks_x + bx]
    }
}

/// Generates a smooth random motion field over a `width × height` frame:
/// a global pan plus small per-block jitter, all in quarter-pel units and
/// guaranteed to include fractional phases (otherwise the interpolation
/// filters — the thing under test — would never run).
///
/// # Example
/// ```
/// let mf = apx_fixture::motion::motion_field(64, 64, 16, 3);
/// assert_eq!(mf.vectors.len(), 16);
/// assert!(mf.vectors.iter().any(|&(dx, dy)| dx % 4 != 0 || dy % 4 != 0));
/// ```
///
/// # Panics
/// Panics if `block_size` is 0 or does not divide both dimensions.
#[must_use]
pub fn motion_field(width: usize, height: usize, block_size: usize, seed: u64) -> MotionField {
    assert!(block_size > 0, "block size must be positive");
    assert!(
        width.is_multiple_of(block_size) && height.is_multiple_of(block_size),
        "block size must tile the frame"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let blocks_x = width / block_size;
    let blocks_y = height / block_size;
    // global pan with a guaranteed fractional phase
    let pan_x = rng.random_range(-12i32..=12) * 4 + rng.random_range(1i32..=3);
    let pan_y = rng.random_range(-12i32..=12) * 4 + rng.random_range(1i32..=3);
    let vectors = (0..blocks_x * blocks_y)
        .map(|_| {
            (
                pan_x + rng.random_range(-6i32..=6),
                pan_y + rng.random_range(-6i32..=6),
            )
        })
        .collect();
    MotionField {
        blocks_x,
        blocks_y,
        block_size,
        vectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_is_deterministic_and_fractional() {
        let a = motion_field(128, 96, 16, 1);
        let b = motion_field(128, 96, 16, 1);
        assert_eq!(a, b);
        assert!(a.vectors.iter().any(|&(dx, dy)| dx % 4 != 0 || dy % 4 != 0));
    }

    #[test]
    fn vector_lookup_uses_block_grid() {
        let mf = motion_field(64, 64, 16, 2);
        assert_eq!(mf.vector_at(0, 0), mf.vectors[0]);
        assert_eq!(mf.vector_at(17, 0), mf.vectors[1]);
        assert_eq!(mf.vector_at(0, 17), mf.vectors[mf.blocks_x]);
        // clamped beyond the last block
        assert_eq!(mf.vector_at(63, 63), mf.vectors[15]);
    }

    #[test]
    #[should_panic(expected = "tile the frame")]
    fn non_tiling_block_panics() {
        let _ = motion_field(60, 64, 16, 0);
    }
}
