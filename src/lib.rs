//! APXPERF-RS facade crate.
//!
//! Re-exports the whole workspace behind a single dependency, so that the
//! examples and integration tests in the repository root (and downstream
//! users who want everything) can write `use apxperf::prelude::*;`.
//!
//! The workspace reproduces **"The Hidden Cost of Functional Approximation
//! Against Careful Data Sizing – A Case Study"** (Barrois, Sentieys,
//! Ménard — DATE 2017). See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Quickstart
//!
//! ```
//! use apxperf::prelude::*;
//!
//! // Characterize one approximate adder against the exact reference.
//! let lib = Library::fdsoi28();
//! let mut chz = Characterizer::new(&lib);
//! let report = chz.characterize(&OperatorConfig::AddTrunc { n: 16, q: 12 });
//! assert!(report.error.mse_db < -40.0);
//! assert!(report.hw.area_um2 > 0.0);
//! ```

pub use apx_apps as apps;
pub use apx_cache as cache;
pub use apx_cells as cells;
pub use apx_core as core;
pub use apx_engine as engine;
pub use apx_fixture as fixture;
pub use apx_metrics as metrics;
pub use apx_netlist as netlist;
pub use apx_operators as operators;

/// Convenience prelude bringing the commonly used types into scope.
pub mod prelude {
    pub use apx_apps::{
        fft::FftFixture, hevc::McFixture, jpeg::JpegFixture, kmeans::KmeansFixture, ArithContext,
        CountingCtx, ExactCtx, OpCounts,
    };
    pub use apx_cache::{Cache, CacheKey, CacheStats, KeyBuilder};
    pub use apx_cells::{CellKind, CellSpec, Library, OperatingPoint};
    pub use apx_core::{
        appenergy, pareto, sweeps, Characterizer, CharacterizerSettings, Engine, OperatorReport,
        ParetoPoint,
    };
    pub use apx_fixture::{clusters, image, signal};
    pub use apx_metrics::{mssim, psnr_db, ErrorStats, QualityScore};
    pub use apx_netlist::{HwAnalyzer, HwReport, Netlist, NetlistBuilder};
    pub use apx_operators::{ApxOperator, OperatorConfig};
}
