//! Property-based pin of the 64-lane bitsliced power kernel against the
//! scalar lane-semantics reference.
//!
//! The contract under test is the strongest one the power rewrite makes:
//! per-gate transition counts from the bitsliced event-driven simulator
//! are **bit-identical** to a scalar one-lane-at-a-time simulation of the
//! same canonical vector-stream decomposition — across operator structure
//! (ripple carry chains, carry-save arrays, Booth recoding), operand
//! width, ragged vector counts that straddle the 64-lane and 256-vector
//! shard boundaries, and any thread count.

use apxperf::cells::Library;
use apxperf::engine::Engine;
use apxperf::netlist::power::{transition_counts_reference, transition_counts_with, PowerSettings};
use apxperf::operators::{FaType, OperatorConfig};
use proptest::prelude::*;

/// Netlist structures spanning the three accumulation styles the issue
/// calls out: ripple (exact RCA and approximate-cell RCA), carry-save
/// array (AAM and truncated array multipliers), and Booth recoding.
/// Widths stay modest because the scalar reference really does simulate
/// the 64 lane sub-streams one at a time.
fn arb_structure() -> impl Strategy<Value = OperatorConfig> {
    prop_oneof![
        (4u32..=24).prop_map(|n| OperatorConfig::AddExact { n }),
        (4u32..=24)
            .prop_flat_map(|n| (Just(n), 0..=n, 0usize..3))
            .prop_map(|(n, m, t)| OperatorConfig::RcaApx {
                n,
                m,
                fa_type: [FaType::One, FaType::Two, FaType::Three][t],
            }),
        (4u32..=10).prop_map(|n| OperatorConfig::Aam { n }),
        (4u32..=10)
            .prop_flat_map(|n| (Just(n), 1..=2 * n))
            .prop_map(|(n, q)| OperatorConfig::MulTrunc { n, q }),
        (2u32..=4).prop_map(|k| OperatorConfig::MulBooth { n: 2 * k }),
    ]
}

/// Vector counts hugging the interesting boundaries: fewer than one per
/// lane, exactly the lane count, ragged mid-shard, one full shard, and
/// multi-shard with a ragged tail.
fn arb_vectors() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..=70,
        Just(64usize),
        Just(256usize),
        Just(257usize),
        200usize..=600,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bitsliced_matches_scalar_reference_per_gate(
        config in arb_structure(),
        vectors in arb_vectors(),
        seed in any::<u64>(),
    ) {
        let nl = config.build().netlist();
        let lib = Library::fdsoi28();
        let settings = PowerSettings { vectors, seed };
        let reference = transition_counts_reference(&nl, &lib, settings);
        for threads in [1usize, 2, 8] {
            let bitsliced =
                transition_counts_with(&nl, &lib, settings, &Engine::new(threads));
            prop_assert_eq!(
                &bitsliced,
                &reference,
                "{:?}: {} vectors, {} threads",
                config,
                vectors,
                threads
            );
        }
    }
}
