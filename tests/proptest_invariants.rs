//! Property-based tests over the cross-crate invariants.

use apxperf::operators::{centered_diff, mask_u, sext, to_u, FaType, OperatorConfig};
use proptest::prelude::*;

fn arb_adder_config() -> impl Strategy<Value = OperatorConfig> {
    prop_oneof![
        (2u32..=10).prop_map(|n| OperatorConfig::AddExact { n }),
        (2u32..=10)
            .prop_flat_map(|n| (Just(n), 1..=n))
            .prop_map(|(n, q)| { OperatorConfig::AddTrunc { n, q } }),
        (3u32..=10)
            .prop_flat_map(|n| (Just(n), 1..n))
            .prop_map(|(n, q)| { OperatorConfig::AddRound { n, q } }),
        (2u32..=10)
            .prop_flat_map(|n| (Just(n), 1..=n))
            .prop_map(|(n, p)| { OperatorConfig::Aca { n, p } }),
        (2u32..=10)
            .prop_flat_map(|n| {
                let divisors: Vec<u32> = (1..=n).filter(|x| n % x == 0).collect();
                (Just(n), proptest::sample::select(divisors))
            })
            .prop_map(|(n, x)| OperatorConfig::EtaIv { n, x }),
        (2u32..=10)
            .prop_flat_map(|n| {
                let divisors: Vec<u32> = (1..=n).filter(|x| n % x == 0).collect();
                (Just(n), proptest::sample::select(divisors))
            })
            .prop_map(|(n, x)| OperatorConfig::EtaIi { n, x }),
        (2u32..=10)
            .prop_flat_map(|n| (Just(n), 0..=n, 0usize..3))
            .prop_map(|(n, m, t)| OperatorConfig::RcaApx {
                n,
                m,
                fa_type: [FaType::One, FaType::Two, FaType::Three][t],
            }),
    ]
}

fn arb_mult_config() -> impl Strategy<Value = OperatorConfig> {
    prop_oneof![
        (2u32..=8).prop_map(|n| OperatorConfig::MulExact { n }),
        (2u32..=8)
            .prop_flat_map(|n| (Just(n), 1..=2 * n))
            .prop_map(|(n, q)| { OperatorConfig::MulTrunc { n, q } }),
        (2u32..=8)
            .prop_flat_map(|n| (Just(n), 1..2 * n))
            .prop_map(|(n, q)| { OperatorConfig::MulRound { n, q } }),
        (2u32..=4).prop_map(|k| OperatorConfig::MulBooth { n: 2 * k }),
        (4u32..=8).prop_map(|n| OperatorConfig::Aam { n }),
        (2u32..=4).prop_map(|k| OperatorConfig::Abm { n: 2 * k }),
        (2u32..=4).prop_map(|k| OperatorConfig::AbmUncorrected { n: 2 * k }),
    ]
}

/// Deterministic operand batch spanning several 64-lane bitslice chunks
/// (so transposition edges and ragged tails are exercised).
fn batch_operands(seed: u64, len: usize, mask: u64) -> (Vec<u64>, Vec<u64>) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let a = (0..len).map(|_| next() & mask).collect();
    let b = (0..len).map(|_| next() & mask).collect();
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every operator's aligned output stays within the reference width,
    /// and exact operators have zero error.
    #[test]
    fn aligned_output_in_range(config in arb_adder_config(), a in any::<u64>(), b in any::<u64>()) {
        let op = config.build();
        let mask = mask_u(op.input_bits());
        let (a, b) = (a & mask, b & mask);
        let aligned = op.aligned_u(a, b);
        prop_assert!(aligned <= mask_u(op.ref_bits()));
        if matches!(config, OperatorConfig::AddExact { .. }) {
            prop_assert_eq!(aligned, op.reference_u(a, b));
        }
    }

    /// Truncation error is non-negative and bounded by the dropped bits
    /// (for q >= 2 the bound stays below half the reference range, so the
    /// centered difference cannot wrap).
    #[test]
    fn trunc_error_bounds(n in 3u32..=12, qd in 1u32..=6, a in any::<u64>(), b in any::<u64>()) {
        let q = n.saturating_sub(qd).max(2);
        let op = OperatorConfig::AddTrunc { n, q }.build();
        let mask = mask_u(n);
        let (a, b) = (a & mask, b & mask);
        let e = centered_diff(op.reference_u(a, b), op.aligned_u(a, b), n);
        let s = n - q;
        prop_assert!(e >= 0);
        prop_assert!(e <= 2 * ((1i64 << s) - 1));
    }

    /// Multiplier models agree with native signed multiplication when
    /// they are exact, and all netlists match their functional models.
    #[test]
    fn mult_netlist_equivalence(config in arb_mult_config(), a in any::<u64>(), b in any::<u64>()) {
        let op = config.build();
        let mask = mask_u(op.input_bits());
        let (a, b) = (a & mask, b & mask);
        if matches!(config, OperatorConfig::MulExact { .. } | OperatorConfig::MulBooth { .. }) {
            let n = op.input_bits();
            let expected = to_u(sext(a, n).wrapping_mul(sext(b, n)), 2 * n);
            prop_assert_eq!(op.eval_u(a, b), expected);
        }
        // single-point netlist equivalence (cheap, covers the whole family
        // over many cases)
        let nl = op.netlist();
        let mut sim = apxperf::netlist::Sim64::new(&nl);
        sim.set_bus_lanes("a", &[a]);
        sim.set_bus_lanes("b", &[b]);
        sim.run();
        prop_assert_eq!(sim.read_bus_lanes("y", 1)[0], op.eval_u(a, b));
    }

    /// Batched evaluation is extensionally equal to the scalar model for
    /// every operator config family — the contract that lets the bitsliced
    /// `eval_batch` overrides (ACA/ETA/RCAApx) stand in for per-sample
    /// loops in the characterization engine.
    #[test]
    fn eval_batch_matches_scalar_eval(
        config in prop_oneof![arb_adder_config(), arb_mult_config()],
        seed in any::<u64>(),
        len in 1usize..200,
    ) {
        let op = config.build();
        let mask = mask_u(op.input_bits());
        let (a, b) = batch_operands(seed, len, mask);
        let mut raw = vec![0u64; len];
        let mut aligned = vec![0u64; len];
        let mut reference = vec![0u64; len];
        op.eval_batch(&a, &b, &mut raw);
        op.aligned_batch(&a, &b, &mut aligned);
        op.reference_batch(&a, &b, &mut reference);
        for i in 0..len {
            prop_assert_eq!(raw[i], op.eval_u(a[i], b[i]), "{} raw lane {}", op.name(), i);
            prop_assert_eq!(aligned[i], op.aligned_u(a[i], b[i]), "{} aligned lane {}", op.name(), i);
            prop_assert_eq!(reference[i], op.reference_u(a[i], b[i]), "{} ref lane {}", op.name(), i);
        }
    }

    /// centered_diff is a metric-compatible signed distance.
    #[test]
    fn centered_diff_properties(bits in 2u32..=32, x in any::<u64>(), y in any::<u64>()) {
        let m = mask_u(bits);
        let (x, y) = (x & m, y & m);
        let d = centered_diff(x, y, bits);
        // antisymmetric except at the antipodal point, where the distance
        // is exactly half the range and the sign is a convention
        if d.unsigned_abs() != 1u64 << (bits - 1) {
            prop_assert_eq!(d, -centered_diff(y, x, bits));
        }
        prop_assert!(d.unsigned_abs() <= 1u64 << (bits - 1));
        // adding the diff back recovers x (mod 2^bits)
        prop_assert_eq!(y.wrapping_add(d as u64) & m, x);
    }

    /// MSSIM of an image with itself is 1; with an inverted copy it is low.
    #[test]
    fn mssim_extremes(seed in 0u64..50) {
        let img = apxperf::fixture::image::synthetic_photo(32, 32, seed);
        let same = apxperf::metrics::mssim(img.pixels(), img.pixels(), 32, 32);
        prop_assert!((same - 1.0).abs() < 1e-12);
        let inverted: Vec<u8> = img.pixels().iter().map(|&p| 255 - p).collect();
        let opposite = apxperf::metrics::mssim(img.pixels(), &inverted, 32, 32);
        prop_assert!(opposite < same);
    }
}
