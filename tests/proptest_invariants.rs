//! Property-based tests over the cross-crate invariants.

use apxperf::operators::{centered_diff, mask_u, sext, to_u, FaType, OperatorConfig, QuantMode};
use proptest::prelude::*;

fn arb_adder_config() -> impl Strategy<Value = OperatorConfig> {
    prop_oneof![
        (2u32..=10).prop_map(|n| OperatorConfig::AddExact { n }),
        (2u32..=10)
            .prop_flat_map(|n| (Just(n), 1..=n))
            .prop_map(|(n, q)| { OperatorConfig::AddTrunc { n, q } }),
        (3u32..=10)
            .prop_flat_map(|n| (Just(n), 1..n))
            .prop_map(|(n, q)| { OperatorConfig::AddRound { n, q } }),
        (2u32..=10)
            .prop_flat_map(|n| (Just(n), 1..=n))
            .prop_map(|(n, p)| { OperatorConfig::Aca { n, p } }),
        (2u32..=10)
            .prop_flat_map(|n| {
                let divisors: Vec<u32> = (1..=n).filter(|x| n % x == 0).collect();
                (Just(n), proptest::sample::select(divisors))
            })
            .prop_map(|(n, x)| OperatorConfig::EtaIv { n, x }),
        (2u32..=10)
            .prop_flat_map(|n| {
                let divisors: Vec<u32> = (1..=n).filter(|x| n % x == 0).collect();
                (Just(n), proptest::sample::select(divisors))
            })
            .prop_map(|(n, x)| OperatorConfig::EtaIi { n, x }),
        (2u32..=10)
            .prop_flat_map(|n| (Just(n), 0..=n, 0usize..3))
            .prop_map(|(n, m, t)| OperatorConfig::RcaApx {
                n,
                m,
                fa_type: [FaType::One, FaType::Two, FaType::Three][t],
            }),
    ]
}

fn arb_mult_config() -> impl Strategy<Value = OperatorConfig> {
    prop_oneof![
        (2u32..=8).prop_map(|n| OperatorConfig::MulExact { n }),
        (2u32..=8)
            .prop_flat_map(|n| (Just(n), 1..=2 * n))
            .prop_map(|(n, q)| { OperatorConfig::MulTrunc { n, q } }),
        (2u32..=8)
            .prop_flat_map(|n| (Just(n), 1..2 * n))
            .prop_map(|(n, q)| { OperatorConfig::MulRound { n, q } }),
        (2u32..=4).prop_map(|k| OperatorConfig::MulBooth { n: 2 * k }),
        (4u32..=8).prop_map(|n| OperatorConfig::Aam { n }),
        (2u32..=4).prop_map(|k| OperatorConfig::Abm { n: 2 * k }),
        (2u32..=4).prop_map(|k| OperatorConfig::AbmUncorrected { n: 2 * k }),
    ]
}

fn arb_quant_mode() -> impl Strategy<Value = QuantMode> {
    proptest::sample::select(vec![QuantMode::Trunc, QuantMode::Round])
}

fn arb_sized_config() -> impl Strategy<Value = OperatorConfig> {
    prop_oneof![
        (3u32..=12, arb_quant_mode())
            .prop_flat_map(|(n, mode)| (Just(n), 2..n, Just(mode)))
            .prop_map(|(n, w, mode)| OperatorConfig::AddSized { n, w, mode }),
        (3u32..=10, arb_quant_mode())
            .prop_flat_map(|(n, mode)| (Just(n), 2..n, Just(mode)))
            .prop_map(|(n, w, mode)| OperatorConfig::MulSized { n, w, mode }),
    ]
}

/// Full-width corner configurations — every family at the widest operand
/// it accepts (adders n = 32, multipliers n = 24, Booth up to 24) — so
/// the bitsliced kernels are exercised at their transposition extremes,
/// not only mid-range.
fn arb_extreme_config() -> impl Strategy<Value = OperatorConfig> {
    prop_oneof![
        Just(OperatorConfig::AddExact { n: 32 }),
        (1u32..=32).prop_map(|q| OperatorConfig::AddTrunc { n: 32, q }),
        (1u32..32).prop_map(|q| OperatorConfig::AddRound { n: 32, q }),
        (1u32..=32).prop_map(|p| OperatorConfig::Aca { n: 32, p }),
        proptest::sample::select(vec![1u32, 2, 4, 8, 16, 32])
            .prop_map(|x| OperatorConfig::EtaIv { n: 32, x }),
        proptest::sample::select(vec![1u32, 2, 4, 8, 16, 32])
            .prop_map(|x| OperatorConfig::EtaIi { n: 32, x }),
        (0u32..=32, 0usize..3).prop_map(|(m, t)| OperatorConfig::RcaApx {
            n: 32,
            m,
            fa_type: [FaType::One, FaType::Two, FaType::Three][t],
        }),
        Just(OperatorConfig::MulExact { n: 24 }),
        (1u32..=48).prop_map(|q| OperatorConfig::MulTrunc { n: 24, q }),
        (1u32..48).prop_map(|q| OperatorConfig::MulRound { n: 24, q }),
        proptest::sample::select(vec![16u32, 20, 24]).prop_map(|n| OperatorConfig::MulBooth { n }),
        proptest::sample::select(vec![16u32, 20, 24]).prop_map(|n| OperatorConfig::Aam { n }),
        proptest::sample::select(vec![16u32, 20, 24]).prop_map(|n| OperatorConfig::Abm { n }),
        proptest::sample::select(vec![16u32, 20, 24])
            .prop_map(|n| OperatorConfig::AbmUncorrected { n }),
        (2u32..32, arb_quant_mode()).prop_map(|(w, mode)| OperatorConfig::AddSized {
            n: 32,
            w,
            mode
        }),
        (2u32..24, arb_quant_mode()).prop_map(|(w, mode)| OperatorConfig::MulSized {
            n: 24,
            w,
            mode
        }),
    ]
}

/// Deterministic operand batch spanning several 64-lane bitslice chunks
/// (so transposition edges and ragged tails are exercised).
fn batch_operands(seed: u64, len: usize, mask: u64) -> (Vec<u64>, Vec<u64>) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let a = (0..len).map(|_| next() & mask).collect();
    let b = (0..len).map(|_| next() & mask).collect();
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every operator's aligned output stays within the reference width,
    /// and exact operators have zero error.
    #[test]
    fn aligned_output_in_range(config in arb_adder_config(), a in any::<u64>(), b in any::<u64>()) {
        let op = config.build();
        let mask = mask_u(op.input_bits());
        let (a, b) = (a & mask, b & mask);
        let aligned = op.aligned_u(a, b);
        prop_assert!(aligned <= mask_u(op.ref_bits()));
        if matches!(config, OperatorConfig::AddExact { .. }) {
            prop_assert_eq!(aligned, op.reference_u(a, b));
        }
    }

    /// Truncation error is non-negative and bounded by the dropped bits
    /// (for q >= 2 the bound stays below half the reference range, so the
    /// centered difference cannot wrap).
    #[test]
    fn trunc_error_bounds(n in 3u32..=12, qd in 1u32..=6, a in any::<u64>(), b in any::<u64>()) {
        let q = n.saturating_sub(qd).max(2);
        let op = OperatorConfig::AddTrunc { n, q }.build();
        let mask = mask_u(n);
        let (a, b) = (a & mask, b & mask);
        let e = centered_diff(op.reference_u(a, b), op.aligned_u(a, b), n);
        let s = n - q;
        prop_assert!(e >= 0);
        prop_assert!(e <= 2 * ((1i64 << s) - 1));
    }

    /// Multiplier models agree with native signed multiplication when
    /// they are exact, and all netlists match their functional models.
    #[test]
    fn mult_netlist_equivalence(config in arb_mult_config(), a in any::<u64>(), b in any::<u64>()) {
        let op = config.build();
        let mask = mask_u(op.input_bits());
        let (a, b) = (a & mask, b & mask);
        if matches!(config, OperatorConfig::MulExact { .. } | OperatorConfig::MulBooth { .. }) {
            let n = op.input_bits();
            let expected = to_u(sext(a, n).wrapping_mul(sext(b, n)), 2 * n);
            prop_assert_eq!(op.eval_u(a, b), expected);
        }
        // single-point netlist equivalence (cheap, covers the whole family
        // over many cases)
        let nl = op.netlist();
        let mut sim = apxperf::netlist::Sim64::new(&nl);
        sim.set_bus_lanes("a", &[a]);
        sim.set_bus_lanes("b", &[b]);
        sim.run();
        prop_assert_eq!(sim.read_bus_lanes("y", 1)[0], op.eval_u(a, b));
    }

    /// Batched evaluation is extensionally equal to the scalar model for
    /// every operator config family — including the multipliers, the
    /// sized variants and the full-width corner configs — the contract
    /// that lets the accelerated `eval_batch` overrides stand in for
    /// per-sample loops in the characterization engine. `len` runs over
    /// ragged tails (len % 64 != 0) as well as exact 64-lane multiples.
    #[test]
    fn eval_batch_matches_scalar_eval(
        config in prop_oneof![
            arb_adder_config(),
            arb_mult_config(),
            arb_sized_config(),
            arb_extreme_config(),
        ],
        seed in any::<u64>(),
        len in 1usize..200,
    ) {
        let op = config.build();
        let mask = mask_u(op.input_bits());
        let (a, b) = batch_operands(seed, len, mask);
        let mut raw = vec![0u64; len];
        let mut aligned = vec![0u64; len];
        let mut reference = vec![0u64; len];
        op.eval_batch(&a, &b, &mut raw);
        op.aligned_batch(&a, &b, &mut aligned);
        op.reference_batch(&a, &b, &mut reference);
        for i in 0..len {
            prop_assert_eq!(raw[i], op.eval_u(a[i], b[i]), "{} raw lane {}", op.name(), i);
            prop_assert_eq!(aligned[i], op.aligned_u(a[i], b[i]), "{} aligned lane {}", op.name(), i);
            prop_assert_eq!(reference[i], op.reference_u(a[i], b[i]), "{} ref lane {}", op.name(), i);
        }
    }

    /// centered_diff is a metric-compatible signed distance.
    #[test]
    fn centered_diff_properties(bits in 2u32..=32, x in any::<u64>(), y in any::<u64>()) {
        let m = mask_u(bits);
        let (x, y) = (x & m, y & m);
        let d = centered_diff(x, y, bits);
        // antisymmetric except at the antipodal point, where the distance
        // is exactly half the range and the sign is a convention
        if d.unsigned_abs() != 1u64 << (bits - 1) {
            prop_assert_eq!(d, -centered_diff(y, x, bits));
        }
        prop_assert!(d.unsigned_abs() <= 1u64 << (bits - 1));
        // adding the diff back recovers x (mod 2^bits)
        prop_assert_eq!(y.wrapping_add(d as u64) & m, x);
    }

    /// MSSIM of an image with itself is 1; with an inverted copy it is low.
    #[test]
    fn mssim_extremes(seed in 0u64..50) {
        let img = apxperf::fixture::image::synthetic_photo(32, 32, seed);
        let same = apxperf::metrics::mssim(img.pixels(), img.pixels(), 32, 32);
        prop_assert!((same - 1.0).abs() < 1e-12);
        let inverted: Vec<u8> = img.pixels().iter().map(|&p| 255 - p).collect();
        let opposite = apxperf::metrics::mssim(img.pixels(), &inverted, 32, 32);
        prop_assert!(opposite < same);
    }
}

/// Every `OperatorConfig` family ships an accelerated `eval_batch`
/// override: none may silently fall back to the per-sample scalar
/// default. The list has one entry per enum variant, and the `match`
/// below fails to compile when a variant is added without extending it —
/// so a new family cannot land unbatched unnoticed.
#[test]
fn every_operator_family_is_batch_accelerated() {
    let all = [
        OperatorConfig::AddExact { n: 16 },
        OperatorConfig::AddTrunc { n: 16, q: 10 },
        OperatorConfig::AddRound { n: 16, q: 10 },
        OperatorConfig::Aca { n: 16, p: 4 },
        OperatorConfig::EtaIv { n: 16, x: 4 },
        OperatorConfig::EtaIi { n: 16, x: 4 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 8,
            fa_type: FaType::Two,
        },
        OperatorConfig::MulExact { n: 16 },
        OperatorConfig::MulTrunc { n: 16, q: 16 },
        OperatorConfig::MulRound { n: 16, q: 16 },
        OperatorConfig::MulBooth { n: 16 },
        OperatorConfig::Aam { n: 16 },
        OperatorConfig::Abm { n: 16 },
        OperatorConfig::AbmUncorrected { n: 16 },
        OperatorConfig::AddSized {
            n: 16,
            w: 10,
            mode: QuantMode::Round,
        },
        OperatorConfig::MulSized {
            n: 16,
            w: 10,
            mode: QuantMode::Trunc,
        },
    ];
    for config in all {
        // exhaustiveness guard: adding an OperatorConfig variant breaks
        // this match until the new family appears in the list above
        match config {
            OperatorConfig::AddExact { .. }
            | OperatorConfig::AddTrunc { .. }
            | OperatorConfig::AddRound { .. }
            | OperatorConfig::Aca { .. }
            | OperatorConfig::EtaIv { .. }
            | OperatorConfig::EtaIi { .. }
            | OperatorConfig::RcaApx { .. }
            | OperatorConfig::MulExact { .. }
            | OperatorConfig::MulTrunc { .. }
            | OperatorConfig::MulRound { .. }
            | OperatorConfig::MulBooth { .. }
            | OperatorConfig::Aam { .. }
            | OperatorConfig::Abm { .. }
            | OperatorConfig::AbmUncorrected { .. }
            | OperatorConfig::AddSized { .. }
            | OperatorConfig::MulSized { .. } => {}
        }
        let op = config.build();
        assert!(
            op.batch_accelerated(),
            "{} falls back to the scalar eval_batch default",
            op.name()
        );
    }
}
