//! Property-based tests over the cross-crate invariants.

use apxperf::operators::{centered_diff, mask_u, sext, to_u, FaType, OperatorConfig};
use proptest::prelude::*;

fn arb_adder_config() -> impl Strategy<Value = OperatorConfig> {
    prop_oneof![
        (2u32..=10).prop_map(|n| OperatorConfig::AddExact { n }),
        (2u32..=10)
            .prop_flat_map(|n| (Just(n), 1..=n))
            .prop_map(|(n, q)| { OperatorConfig::AddTrunc { n, q } }),
        (3u32..=10)
            .prop_flat_map(|n| (Just(n), 1..n))
            .prop_map(|(n, q)| { OperatorConfig::AddRound { n, q } }),
        (2u32..=10)
            .prop_flat_map(|n| (Just(n), 1..=n))
            .prop_map(|(n, p)| { OperatorConfig::Aca { n, p } }),
        (2u32..=10)
            .prop_flat_map(|n| {
                let divisors: Vec<u32> = (1..=n).filter(|x| n % x == 0).collect();
                (Just(n), proptest::sample::select(divisors))
            })
            .prop_map(|(n, x)| OperatorConfig::EtaIv { n, x }),
        (2u32..=10)
            .prop_flat_map(|n| (Just(n), 0..=n, 0usize..3))
            .prop_map(|(n, m, t)| OperatorConfig::RcaApx {
                n,
                m,
                fa_type: [FaType::One, FaType::Two, FaType::Three][t],
            }),
    ]
}

fn arb_mult_config() -> impl Strategy<Value = OperatorConfig> {
    prop_oneof![
        (2u32..=8).prop_map(|n| OperatorConfig::MulExact { n }),
        (2u32..=8)
            .prop_flat_map(|n| (Just(n), 1..=2 * n))
            .prop_map(|(n, q)| { OperatorConfig::MulTrunc { n, q } }),
        (2u32..=4).prop_map(|k| OperatorConfig::MulBooth { n: 2 * k }),
        (4u32..=8).prop_map(|n| OperatorConfig::Aam { n }),
        (2u32..=4).prop_map(|k| OperatorConfig::Abm { n: 2 * k }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every operator's aligned output stays within the reference width,
    /// and exact operators have zero error.
    #[test]
    fn aligned_output_in_range(config in arb_adder_config(), a in any::<u64>(), b in any::<u64>()) {
        let op = config.build();
        let mask = mask_u(op.input_bits());
        let (a, b) = (a & mask, b & mask);
        let aligned = op.aligned_u(a, b);
        prop_assert!(aligned <= mask_u(op.ref_bits()));
        if matches!(config, OperatorConfig::AddExact { .. }) {
            prop_assert_eq!(aligned, op.reference_u(a, b));
        }
    }

    /// Truncation error is non-negative and bounded by the dropped bits
    /// (for q >= 2 the bound stays below half the reference range, so the
    /// centered difference cannot wrap).
    #[test]
    fn trunc_error_bounds(n in 3u32..=12, qd in 1u32..=6, a in any::<u64>(), b in any::<u64>()) {
        let q = n.saturating_sub(qd).max(2);
        let op = OperatorConfig::AddTrunc { n, q }.build();
        let mask = mask_u(n);
        let (a, b) = (a & mask, b & mask);
        let e = centered_diff(op.reference_u(a, b), op.aligned_u(a, b), n);
        let s = n - q;
        prop_assert!(e >= 0);
        prop_assert!(e <= 2 * ((1i64 << s) - 1));
    }

    /// Multiplier models agree with native signed multiplication when
    /// they are exact, and all netlists match their functional models.
    #[test]
    fn mult_netlist_equivalence(config in arb_mult_config(), a in any::<u64>(), b in any::<u64>()) {
        let op = config.build();
        let mask = mask_u(op.input_bits());
        let (a, b) = (a & mask, b & mask);
        if matches!(config, OperatorConfig::MulExact { .. } | OperatorConfig::MulBooth { .. }) {
            let n = op.input_bits();
            let expected = to_u(sext(a, n).wrapping_mul(sext(b, n)), 2 * n);
            prop_assert_eq!(op.eval_u(a, b), expected);
        }
        // single-point netlist equivalence (cheap, covers the whole family
        // over many cases)
        let nl = op.netlist();
        let mut sim = apxperf::netlist::Sim64::new(&nl);
        sim.set_bus_lanes("a", &[a]);
        sim.set_bus_lanes("b", &[b]);
        sim.run();
        prop_assert_eq!(sim.read_bus_lanes("y", 1)[0], op.eval_u(a, b));
    }

    /// centered_diff is a metric-compatible signed distance.
    #[test]
    fn centered_diff_properties(bits in 2u32..=32, x in any::<u64>(), y in any::<u64>()) {
        let m = mask_u(bits);
        let (x, y) = (x & m, y & m);
        let d = centered_diff(x, y, bits);
        // antisymmetric except at the antipodal point, where the distance
        // is exactly half the range and the sign is a convention
        if d.unsigned_abs() != 1u64 << (bits - 1) {
            prop_assert_eq!(d, -centered_diff(y, x, bits));
        }
        prop_assert!(d.unsigned_abs() <= 1u64 << (bits - 1));
        // adding the diff back recovers x (mod 2^bits)
        prop_assert_eq!(y.wrapping_add(d as u64) & m, x);
    }

    /// MSSIM of an image with itself is 1; with an inverted copy it is low.
    #[test]
    fn mssim_extremes(seed in 0u64..50) {
        let img = apxperf::fixture::image::synthetic_photo(32, 32, seed);
        let same = apxperf::metrics::mssim(img.pixels(), img.pixels(), 32, 32);
        prop_assert!((same - 1.0).abs() < 1e-12);
        let inverted: Vec<u8> = img.pixels().iter().map(|&p| 255 - p).collect();
        let opposite = apxperf::metrics::mssim(img.pixels(), &inverted, 32, 32);
        prop_assert!(opposite < same);
    }
}
