//! CI smoke test: the core APXPERF equivalence claim.
//!
//! `Characterizer::characterize` cross-verifies each operator's
//! gate-level netlist against its bit-accurate functional model (the
//! paper's "Verification" box, standing in for the original C-vs-VHDL
//! equivalence check). This test pins that property for one carefully
//! sized fixed-point config and one approximate config, with settings
//! small enough to run in seconds.

use apxperf::prelude::*;

fn smoke_characterizer(lib: &Library) -> Characterizer<'_> {
    Characterizer::new(lib).with_settings(CharacterizerSettings {
        error_samples: 2_000,
        verify_samples: 400,
        exhaustive_up_to_bits: 12,
        power_vectors: 100,
        seed: 0xC1,
    })
}

#[test]
fn fxp_operator_cross_verifies_and_reports() {
    let lib = Library::fdsoi28();
    let mut chz = smoke_characterizer(&lib);
    let report = chz.characterize(&OperatorConfig::AddTrunc { n: 16, q: 12 });
    assert!(
        report.verified,
        "FxP netlist must be equivalent to the functional model"
    );
    // Truncation drops 4 LSBs: error is bounded, biased positive, nonzero.
    assert!(report.error.error_rate > 0.0);
    assert!(report.error.mean_error > 0.0, "truncation bias is positive");
    assert!(report.hw.area_um2 > 0.0 && report.hw.power_mw > 0.0);
}

#[test]
fn approximate_operator_cross_verifies_and_reports() {
    let lib = Library::fdsoi28();
    let mut chz = smoke_characterizer(&lib);
    let report = chz.characterize(&OperatorConfig::Aca { n: 16, p: 4 });
    assert!(
        report.verified,
        "approximate netlist must be equivalent to its own functional model"
    );
    // Approximate ≠ broken: the functional model departs from the exact
    // reference, but the netlist matches the functional model exactly.
    assert!(report.error.error_rate > 0.0);
    assert!(report.hw.area_um2 > 0.0 && report.hw.power_mw > 0.0);
}
