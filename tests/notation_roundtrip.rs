//! `FromStr` ∘ `Display` must be the identity on every operator
//! configuration the sweeps (and their partner-sizing rules) emit —
//! paper notation is the interchange format of `apxperf report`, the
//! cache keys and the CSV exports, so notation drift would silently
//! detach printed names from parseable ones.

use apxperf::core::appenergy::{partner_adder, partner_multiplier};
use apxperf::core::sweeps;
use apxperf::operators::{OpClass, OperatorConfig};

/// Every configuration any registered sweep emits, plus the partner
/// operators the application energy model sizes alongside them.
fn all_emitted_configs() -> Vec<OperatorConfig> {
    let mut configs: Vec<OperatorConfig> = Vec::new();
    for family in sweeps::FAMILIES {
        configs.extend((family.configs)());
    }
    // the partner-sizing rules emit configs of their own (eq. (1))
    for config in configs.clone() {
        match config.op_class() {
            OpClass::Adder => configs.push(partner_multiplier(&config)),
            OpClass::Multiplier => configs.push(partner_adder(&config)),
        }
    }
    configs
}

#[test]
fn paper_notation_round_trips_for_every_swept_config() {
    let configs = all_emitted_configs();
    assert!(configs.len() > 150, "sweep inventory shrank unexpectedly");
    for config in configs {
        let printed = config.to_string();
        let parsed: OperatorConfig = printed
            .parse()
            .unwrap_or_else(|e| panic!("`{printed}` printed but does not parse: {e}"));
        assert_eq!(parsed, config, "round-trip drift on `{printed}`");
        // and printing the parse reproduces the exact notation
        assert_eq!(parsed.to_string(), printed);
    }
}

#[test]
fn notation_is_case_insensitive_but_unambiguous() {
    for config in all_emitted_configs() {
        let printed = config.to_string();
        let lowered = printed.to_lowercase();
        assert_eq!(
            lowered.parse::<OperatorConfig>(),
            Ok(config),
            "lowercased `{lowered}` must parse to the same config"
        );
    }
}
