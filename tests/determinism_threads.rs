//! Determinism regression: the sharded, multi-threaded characterization
//! engine must produce **bit-identical** `OperatorReport`s for any thread
//! count under the same seed.
//!
//! This is the contract that makes `APXPERF_THREADS` a pure wall-clock
//! knob: the shard plan depends only on the sample counts, every shard
//! draws from its own seed-derived RNG stream, and partials merge in
//! shard order. If any loop ever consumed a thread-shared stream again,
//! these comparisons (including every floating-point metric and the
//! PSD/PDF-bearing `ErrorStats` path) would diverge.

use apxperf::prelude::*;

fn settings() -> CharacterizerSettings {
    CharacterizerSettings {
        // > 2 shards of the error loop, with a ragged tail
        error_samples: 20_000,
        verify_samples: 1_500,
        exhaustive_up_to_bits: 12,
        power_vectors: 600, // > 2 power shards, ragged tail
        seed: 0xDA7E_2017,
    }
}

fn report_for(config: &OperatorConfig, threads: usize) -> OperatorReport {
    let lib = Library::fdsoi28();
    Characterizer::new(&lib)
        .with_settings(settings())
        .with_engine(Engine::new(threads))
        .characterize(config)
}

fn assert_thread_invariant(config: OperatorConfig) {
    let baseline = report_for(&config, 1);
    assert!(baseline.verified, "{config} must verify");
    for threads in [2, 8] {
        let report = report_for(&config, threads);
        assert_eq!(
            report, baseline,
            "{config}: report differs between 1 and {threads} threads"
        );
    }
}

#[test]
fn fxp_report_is_bit_identical_across_thread_counts() {
    // carefully sized fixed-point config (Figs. 3/4 family)
    assert_thread_invariant(OperatorConfig::AddTrunc { n: 16, q: 10 });
}

#[test]
fn approximate_report_is_bit_identical_across_thread_counts() {
    // approximate config exercising the bitsliced batch path
    assert_thread_invariant(OperatorConfig::Aca { n: 16, p: 8 });
}

#[test]
fn report_is_bit_identical_across_eval_batch_widths() {
    // the in-shard eval-batch width (how many samples are handed to one
    // `eval_batch` call) is a pure wall-clock knob exactly like the
    // thread count: draws are per-sample sequential within a shard, so
    // regrouping them into wider or narrower batches must not move a
    // single reported bit — on any thread count
    let lib = Library::fdsoi28();
    let config = OperatorConfig::MulTrunc { n: 16, q: 16 };
    let report_for = |batch: usize, threads: usize| {
        Characterizer::new(&lib)
            .with_settings(settings())
            .with_engine(Engine::new(threads))
            .with_eval_batch(batch)
            .characterize(&config)
    };
    let baseline = report_for(64, 1);
    assert!(baseline.verified);
    for batch in [64, 1024, 8192] {
        for threads in [1, 4] {
            assert_eq!(
                report_for(batch, threads),
                baseline,
                "report differs at batch={batch} threads={threads}"
            );
        }
    }
}

#[test]
fn full_error_stats_are_bit_identical_across_thread_counts() {
    // beyond the scalar summary: the PSD capture and PDF bins also merge
    // in shard order, so the non-scalar metrics must agree too
    let lib = Library::fdsoi28();
    let op = OperatorConfig::RcaApx {
        n: 16,
        m: 6,
        fa_type: apxperf::operators::FaType::Three,
    }
    .build();
    let stats_for = |threads: usize| {
        Characterizer::new(&lib)
            .with_settings(settings())
            .with_engine(Engine::new(threads))
            .error_stats(op.as_ref())
    };
    let base = stats_for(1);
    for threads in [2, 8] {
        let stats = stats_for(threads);
        assert_eq!(stats.samples(), base.samples());
        assert_eq!(stats.mse().to_bits(), base.mse().to_bits());
        assert_eq!(stats.ber().to_bits(), base.ber().to_bits());
        assert_eq!(stats.pdf(), base.pdf());
        assert_eq!(stats.psd(), base.psd());
    }
}
