//! Property-based tests of the Pareto core (`apx_core::pareto`): the
//! computed front is actually non-dominated, every dropped candidate is
//! dominated by a front member, and verdicts are bit-identical across
//! thread counts.

use apxperf::core::pareto::{analyze, dominates, ParetoSample};
use apxperf::core::Engine;
use proptest::prelude::*;

/// Derives a candidate set from a seed, on a deliberately coarse grid
/// (small integer-derived coordinates) so duplicates, ties on one axis
/// and dense dominance chains all occur often — the regimes where
/// strict-dominance semantics matter.
fn samples_from(seed: u64, len: usize) -> Vec<ParetoSample> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|_| ParetoSample {
            quality: ((next() % 50) as f64) / 4.0,
            energy: ((next() % 50) as f64) / 4.0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: no candidate on the front is strictly dominated by any
    /// other candidate, and every front verdict carries no dominator.
    #[test]
    fn front_members_are_non_dominated(seed in any::<u64>(), len in 1usize..60) {
        let samples = samples_from(seed, len);
        let preferred = vec![false; samples.len()];
        let verdicts = analyze(&samples, &preferred, &Engine::single_threaded());
        for (i, v) in verdicts.iter().enumerate() {
            if v.on_front {
                prop_assert_eq!(v.dominated_by, None);
                for (j, &other) in samples.iter().enumerate() {
                    prop_assert!(
                        j == i || !dominates(other, samples[i]),
                        "front member {} is dominated by {}", i, j
                    );
                }
            }
        }
    }

    /// Completeness: every dropped candidate names a dominator that (a)
    /// actually dominates it and (b) is itself on the front — so the
    /// front alone explains every exclusion.
    #[test]
    fn dropped_candidates_are_dominated_by_front_members(seed in any::<u64>(), len in 1usize..60) {
        let samples = samples_from(seed, len);
        let preferred: Vec<bool> = (0..samples.len()).map(|i| i % 2 == 0).collect();
        let verdicts = analyze(&samples, &preferred, &Engine::single_threaded());
        for (i, v) in verdicts.iter().enumerate() {
            if !v.on_front {
                let j = v.dominated_by.expect("dropped candidates name a dominator");
                prop_assert!(dominates(samples[j], samples[i]), "{} does not dominate {}", j, i);
                prop_assert!(verdicts[j].on_front, "dominator {} of {} is not on the front", j, i);
                // and the preference rule: a preferred dominator is named
                // whenever any preferred front member dominates
                let preferred_dominates = samples.iter().enumerate().any(|(k, &s)| {
                    preferred[k] && verdicts[k].on_front && dominates(s, samples[i])
                });
                if preferred_dominates {
                    prop_assert!(preferred[j], "{}: non-preferred dominator {} chosen", i, j);
                }
            }
        }
    }

    /// Determinism: front membership and dominator choices are
    /// bit-identical for any engine thread count.
    #[test]
    fn verdicts_are_identical_across_thread_counts(seed in any::<u64>(), len in 1usize..60) {
        let samples = samples_from(seed, len);
        let preferred: Vec<bool> = (0..samples.len()).map(|i| i % 3 == 0).collect();
        let serial = analyze(&samples, &preferred, &Engine::single_threaded());
        for threads in [2usize, 4] {
            let parallel = analyze(&samples, &preferred, &Engine::new(threads));
            prop_assert_eq!(&parallel, &serial, "threads={}", threads);
        }
    }
}
