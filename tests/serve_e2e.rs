//! Black-box end-to-end tests of the `apxperf serve` daemon, run
//! in-process over real TCP on an ephemeral port: a raw-socket HTTP
//! client talks to a [`apx_serve::Server`] exactly as `curl` would.
//!
//! The contracts under test are the ISSUE's acceptance criteria:
//! warm `GET /report` bodies are **byte-identical** to the CLI renderer,
//! a thundering herd of identical cold queries coalesces to exactly one
//! miss, malformed requests get structured JSON errors (never hangs),
//! the bounded job queue rejects overflow with 503, and a graceful
//! shutdown drains every accepted job before the server returns.

use apx_cache::Cache;
use apx_core::output::Format;
use apx_core::query::{self, QueryParams};
use apx_engine::Engine;
use apx_serve::{Server, ServerConfig, ServerHandle};
use apxperf::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("apxperf_serve_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// An in-process daemon on an ephemeral port, drained on drop.
struct Daemon {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start(config: ServerConfig) -> Daemon {
        let server = Server::bind(config).expect("ephemeral bind succeeds");
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        Daemon {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    fn shutdown(mut self) {
        self.handle.request_shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread exits cleanly");
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.handle.request_shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread exits cleanly");
        }
    }
}

/// Small defaults so debug-mode characterizations stay fast.
fn small_params() -> QueryParams {
    QueryParams {
        samples: 800,
        vectors: 40,
        ..QueryParams::default()
    }
}

fn config_with(cache: Cache, defaults: QueryParams) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache,
        defaults,
        ..ServerConfig::default()
    }
}

// -------------------------------------------------------------------
// the raw-socket HTTP client

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("daemon accepts connections");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .unwrap();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .expect("daemon closes the connection after responding");
    let text = String::from_utf8(raw).expect("responses are UTF-8");
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .expect("response has a header/body separator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line has a code")
        .parse()
        .expect("status code is numeric");
    (status, payload.to_owned())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, "GET", path, None)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(addr, "POST", path, Some(body))
}

/// Extracts `"name": <number>` from a JSON body (both stats shapes
/// rendered by the daemon are flat enough for this).
fn json_u64(body: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let tail = body
        .split(&needle)
        .nth(1)
        .unwrap_or_else(|| panic!("field {name} missing in: {body}"));
    tail.trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("field {name} is not numeric in: {body}"))
}

fn poll_job_done(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(240);
    loop {
        let (status, body) = get(addr, &format!("/job/{id}"));
        assert!(
            status == 200 || status == 202,
            "unexpected poll status {status}: {body}"
        );
        if body.contains("\"status\":\"done\"") {
            let (status, result) = get(addr, &format!("/job/{id}/result"));
            assert_eq!(status, 200, "{result}");
            return result;
        }
        assert!(
            !body.contains("\"status\":\"failed\""),
            "job {id} failed: {body}"
        );
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

// -------------------------------------------------------------------
// the tests

#[test]
fn healthz_portfile_and_structured_errors() {
    let tmp = TempDir::new("errors");
    let port_file = tmp.0.join("port");
    let mut config = config_with(Cache::default(), small_params());
    config.port_file = Some(port_file.clone());
    let daemon = Daemon::start(config);

    // the port file holds the actually bound (ephemeral) address
    let written = std::fs::read_to_string(&port_file).expect("port file written at bind");
    assert_eq!(written.trim().parse::<SocketAddr>().unwrap(), daemon.addr);

    let (status, body) = get(daemon.addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}\n"));

    // every failure mode is a structured JSON error, not a hang
    let (status, body) = get(daemon.addr, "/frobnicate");
    assert_eq!(status, 404);
    assert!(body.contains("\"error\""), "{body}");
    let (status, body) = request(daemon.addr, "DELETE", "/healthz", None);
    assert_eq!(status, 405, "{body}");
    let (status, body) = get(daemon.addr, "/report/FROB(16)");
    assert_eq!(status, 400);
    assert!(body.contains("invalid operator"), "{body}");
    let (status, body) = get(daemon.addr, "/report/ADDt(16,12)?sample=1");
    assert_eq!(status, 400);
    assert!(body.contains("unknown query parameter"), "{body}");
    let (status, body) = post(daemon.addr, "/sweep", r#"{"family":"nope"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("is not one of"), "{body}");
    let (status, body) = post(daemon.addr, "/sweep", r#"{"workload":"nope"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("unknown workload"), "{body}");
    let (status, body) = post(daemon.addr, "/pareto", "{}");
    assert_eq!(status, 400);
    assert!(body.contains("workload"), "{body}");
    let (status, body) = post(daemon.addr, "/sweep", "not json at all");
    assert_eq!(status, 400);
    assert!(body.contains("not JSON"), "{body}");
    let (status, body) = get(daemon.addr, "/job/99");
    assert_eq!(status, 404);
    assert!(body.contains("unknown job"), "{body}");
    let (status, body) = get(daemon.addr, "/job/banana");
    assert_eq!(status, 400, "{body}");

    // none of the errors counted as report traffic
    let (status, stats) = get(daemon.addr, "/stats");
    assert_eq!(status, 200);
    for field in ["hits", "misses", "coalesced", "rejected", "inflight"] {
        assert_eq!(json_u64(&stats, field), 0, "{field} in {stats}");
    }
    daemon.shutdown();
}

#[test]
fn warm_reports_are_byte_identical_to_the_cli_renderer() {
    let tmp = TempDir::new("warm");
    let params = small_params();
    let daemon = Daemon::start(config_with(Cache::builder().dir(&tmp.0).open(), params));

    // what `apxperf report 'ADDt(16,12)' --format json` prints on stdout
    let (expected, hit) = query::report_text(
        &Library::fdsoi28(),
        &params,
        "ADDt(16,12)",
        &Engine::from_env(),
        &Cache::default(),
    )
    .expect("reference render succeeds");
    assert!(!hit);

    let (status, cold) = get(daemon.addr, "/report/ADDt(16,12)");
    assert_eq!(status, 200);
    assert_eq!(cold, expected, "cold body must equal the CLI stdout bytes");

    let (status, warm) = get(daemon.addr, "/report/ADDt(16,12)");
    assert_eq!(status, 200);
    assert_eq!(warm, expected, "warm body must equal the CLI stdout bytes");

    let (_, stats) = get(daemon.addr, "/stats");
    assert_eq!(json_u64(&stats, "misses"), 1, "{stats}");
    assert_eq!(json_u64(&stats, "hits"), 1, "{stats}");
    assert_eq!(json_u64(&stats, "coalesced"), 0, "{stats}");

    // per-request parameter overrides change the key, not the defaults
    let (status, other) = get(daemon.addr, "/report/ADDt(16,12)?samples=400");
    assert_eq!(status, 200);
    assert_ne!(other, expected, "different samples, different report");
    daemon.shutdown();
}

#[test]
fn a_thundering_herd_coalesces_to_exactly_one_miss() {
    let tmp = TempDir::new("herd");
    // a deliberately heavy single report, so the leader's computation is
    // still in flight long after all followers have joined
    let params = QueryParams {
        samples: 150_000,
        vectors: 2_000,
        ..QueryParams::default()
    };
    let daemon = Daemon::start(config_with(Cache::builder().dir(&tmp.0).open(), params));
    const HERD: usize = 6;

    let barrier = std::sync::Barrier::new(HERD);
    let bodies: Vec<(u16, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..HERD)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    get(daemon.addr, "/report/ACA(16,4)")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (status, body) in &bodies {
        assert_eq!(*status, 200);
        assert_eq!(
            body, &bodies[0].1,
            "all herd members must receive bit-identical bodies"
        );
    }
    let (_, stats) = get(daemon.addr, "/stats");
    assert_eq!(json_u64(&stats, "misses"), 1, "{stats}");
    assert_eq!(json_u64(&stats, "coalesced"), (HERD - 1) as u64, "{stats}");
    assert_eq!(json_u64(&stats, "hits"), 0, "{stats}");
    assert_eq!(json_u64(&stats, "inflight"), 0, "{stats}");
    daemon.shutdown();
}

#[test]
fn sweep_and_pareto_jobs_render_the_cli_stdout_bytes() {
    let tmp = TempDir::new("jobs");
    let params = QueryParams {
        samples: 400,
        vectors: 24,
        ..QueryParams::default()
    };
    let daemon = Daemon::start(config_with(Cache::builder().dir(&tmp.0).open(), params));

    let (status, accepted) = post(
        daemon.addr,
        "/sweep",
        r#"{"family":"points","workload":"fir","format":"json"}"#,
    );
    assert_eq!(status, 202, "{accepted}");
    assert!(accepted.contains("\"status\":\"queued\""), "{accepted}");
    let sweep_id = json_u64(&accepted, "job");
    let sweep_body = poll_job_done(daemon.addr, sweep_id);
    let expected = query::sweep_text(
        &Library::fdsoi28(),
        &params,
        "points",
        Some("fir"),
        Format::Json,
        &Engine::from_env(),
        &Cache::default(),
    )
    .expect("reference sweep succeeds");
    assert_eq!(
        sweep_body, expected,
        "job result must equal `apxperf sweep` stdout bytes"
    );

    let (status, accepted) = post(
        daemon.addr,
        "/pareto",
        r#"{"workload":"fir","family":"points","format":"json"}"#,
    );
    assert_eq!(status, 202, "{accepted}");
    let pareto_id = json_u64(&accepted, "job");
    let pareto_body = poll_job_done(daemon.addr, pareto_id);
    let expected = query::pareto_text(
        &Library::fdsoi28(),
        &params,
        "fir",
        Some("points"),
        false,
        Format::Json,
        &Engine::from_env(),
        &Cache::default(),
    )
    .expect("reference pareto succeeds");
    assert_eq!(
        pareto_body, expected,
        "job result must equal `apxperf pareto` stdout bytes"
    );

    let (_, stats) = get(daemon.addr, "/stats");
    assert_eq!(json_u64(&stats, "done"), 2, "{stats}");
    assert_eq!(json_u64(&stats, "failed"), 0, "{stats}");
    daemon.shutdown();
}

#[test]
fn the_job_queue_is_bounded_and_overflow_is_a_structured_503() {
    let tmp = TempDir::new("overflow");
    let params = QueryParams {
        samples: 5_000,
        vectors: 100,
        ..QueryParams::default()
    };
    let mut config = config_with(Cache::builder().dir(&tmp.0).open(), params);
    config.queue_capacity = 1;
    let daemon = Daemon::start(config);

    let body = r#"{"family":"points","workload":"fir","format":"json"}"#;
    let mut accepted = Vec::new();
    let mut rejected = 0_u64;
    for _ in 0..4 {
        let (status, response) = post(daemon.addr, "/sweep", body);
        match status {
            202 => accepted.push(json_u64(&response, "job")),
            503 => {
                assert!(response.contains("job queue full"), "{response}");
                rejected += 1;
            }
            other => panic!("unexpected status {other}: {response}"),
        }
    }
    assert!(!accepted.is_empty(), "some submissions must be accepted");
    assert!(rejected > 0, "capacity 1 must reject a burst of 4");

    let (_, stats) = get(daemon.addr, "/stats");
    assert_eq!(json_u64(&stats, "rejected"), rejected, "{stats}");

    // every accepted job still runs to completion
    for id in accepted {
        poll_job_done(daemon.addr, id);
    }
    daemon.shutdown();
}

#[test]
fn cache_endpoints_measure_collect_and_report_busy_as_409() {
    let tmp = TempDir::new("cache_ops");
    let daemon = Daemon::start(config_with(
        Cache::builder().dir(&tmp.0).open(),
        small_params(),
    ));

    // a fresh directory measures empty
    let (status, body) = get(daemon.addr, "/cache/stats");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"enabled\": true"), "{body}");
    assert_eq!(json_u64(&body, "blobs"), 0, "{body}");
    assert_eq!(json_u64(&body, "bytes"), 0, "{body}");

    // one characterization lands one blob; /cache/stats sees its bytes
    let (status, _) = get(daemon.addr, "/report/ADDt(16,12)");
    assert_eq!(status, 200);
    let (_, body) = get(daemon.addr, "/cache/stats");
    assert_eq!(json_u64(&body, "blobs"), 1, "{body}");
    assert!(json_u64(&body, "bytes") > 0, "{body}");

    // gc validation: non-object, unknown field, missing budget
    let (status, body) = post(daemon.addr, "/cache/gc", "[1,2]");
    assert_eq!(status, 400, "{body}");
    let (status, body) = post(daemon.addr, "/cache/gc", r#"{"maxbytes":1}"#);
    assert_eq!(status, 400);
    assert!(body.contains("unknown field"), "{body}");
    let (status, body) = post(daemon.addr, "/cache/gc", "{}");
    assert_eq!(status, 400);
    assert!(body.contains("max_bytes"), "{body}");

    // a held gc lock is a 409 Conflict with the structured Busy error
    let lock = tmp.0.join("gc.lock");
    std::fs::write(&lock, "held\n").expect("plant a fresh gc lock");
    let (status, body) = post(daemon.addr, "/cache/gc", r#"{"max_bytes":0}"#);
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("Busy"), "{body}");
    std::fs::remove_file(&lock).expect("release the planted lock");

    // a zero budget collects everything; /stats reports the eviction
    let (status, body) = post(daemon.addr, "/cache/gc", r#"{"max_bytes":0}"#);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_u64(&body, "evicted_blobs"), 1, "{body}");
    assert_eq!(json_u64(&body, "remaining_bytes"), 0, "{body}");
    let (_, stats) = get(daemon.addr, "/stats");
    assert_eq!(json_u64(&stats, "evictions"), 1, "{stats}");
    assert_eq!(json_u64(&stats, "imports"), 0, "{stats}");
    assert_eq!(json_u64(&stats, "blobs"), 0, "{stats}");

    // wrong methods on the cache endpoints are 405s, not 404s
    let (status, body) = post(daemon.addr, "/cache/stats", "");
    assert_eq!(status, 405, "{body}");
    let (status, body) = get(daemon.addr, "/cache/gc");
    assert_eq!(status, 405, "{body}");
    daemon.shutdown();
}

#[test]
fn graceful_shutdown_drains_accepted_jobs() {
    let tmp = TempDir::new("drain");
    let params = QueryParams {
        samples: 400,
        vectors: 24,
        ..QueryParams::default()
    };
    let cache = Cache::builder().dir(&tmp.0).open();
    let daemon = Daemon::start(config_with(cache.clone(), params));

    let (status, accepted) = post(
        daemon.addr,
        "/sweep",
        r#"{"family":"points","workload":"fir","format":"json"}"#,
    );
    assert_eq!(status, 202, "{accepted}");

    // shutdown immediately: the accepted job must still run to
    // completion before the server returns
    let (status, body) = post(daemon.addr, "/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");
    daemon.shutdown();

    // proof of the drain: the sweep's cell blobs landed in the cache
    assert!(
        cache.len() >= 9,
        "drained sweep must have written its 9 cell blobs, found {}",
        cache.len()
    );
    // and the drain persisted the run's cache counters
    assert!(
        cache.last_run_stats().is_some(),
        "the drain persisted run stats"
    );
}
