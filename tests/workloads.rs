//! Property tests over the `Workload` registry: every registered
//! workload must be a pure function of its seed (bit-identical scores
//! for any engine thread count), and exact arithmetic must never lose
//! to an approximate context.

use apxperf::apps::workload::{WorkloadParams, WORKLOADS};
use apxperf::cells::Library;
use apxperf::core::appenergy::sweep_workload;
use apxperf::core::{CharacterizerSettings, Engine};
use apxperf::metrics::QualityScore;
use apxperf::operators::{ExactCtx, FaType, OperatorConfig, OperatorCtx};
use proptest::prelude::*;

/// Small parameters so every workload runs in milliseconds: 16-pixel
/// images, one K-means set of 20 points per cluster.
fn tiny_params() -> WorkloadParams {
    WorkloadParams {
        size: 16,
        sets: 1,
        points: 20,
    }
}

/// Reduced characterization preset for the sweep-level properties.
fn tiny_settings(seed: u64) -> CharacterizerSettings {
    CharacterizerSettings {
        error_samples: 500,
        verify_samples: 50,
        exhaustive_up_to_bits: 6,
        power_vectors: 20,
        seed,
    }
}

/// A representative operator mix: gentle and harsh, adders and
/// multipliers, spanning every context slot the workloads exercise.
const CONFIGS: &[OperatorConfig] = &[
    OperatorConfig::AddTrunc { n: 16, q: 12 },
    OperatorConfig::AddTrunc { n: 16, q: 8 },
    OperatorConfig::Aca { n: 16, p: 8 },
    OperatorConfig::EtaIv { n: 16, x: 4 },
    OperatorConfig::RcaApx {
        n: 16,
        m: 6,
        fa_type: FaType::Three,
    },
    OperatorConfig::MulTrunc { n: 16, q: 16 },
    OperatorConfig::Aam { n: 16 },
    OperatorConfig::AbmUncorrected { n: 16 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole determinism contract: a (workload × config) sweep
    /// cell carries the same bit-exact `QualityScore` (and model) no
    /// matter how many engine workers computed it.
    #[test]
    fn sweep_cells_are_bit_identical_across_thread_counts(
        workload_idx in 0usize..WORKLOADS.len(),
        config_idx in 0usize..CONFIGS.len(),
        seed in 0u64..4,
    ) {
        let workload = (WORKLOADS[workload_idx].build)(&tiny_params()).expect("tiny params are valid");
        let lib = Library::fdsoi28();
        let configs = [CONFIGS[config_idx]];
        let serial = sweep_workload(
            workload.as_ref(), seed, &lib, tiny_settings(9), &configs, &Engine::new(1));
        let threaded = sweep_workload(
            workload.as_ref(), seed, &lib, tiny_settings(9), &configs, &Engine::new(3));
        prop_assert_eq!(&serial, &threaded, "{}", workload.fingerprint());
        prop_assert_eq!(
            serial[0].run.score.value().to_bits(),
            threaded[0].run.score.value().to_bits(),
            "score must be bit-identical, not just approximately equal"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exact arithmetic never loses to an approximate context. For the
    /// exact-reference metrics (PSNR/SNR/MSSIM) this is structural —
    /// the exact run scores ∞ dB / 1.0. K-means is scored against the
    /// ground truth instead, where a boundary point can flip either way
    /// under approximation, so exact must stay within one-point luck
    /// (2 % of the 200-point tiny fixture) of any approximate run.
    #[test]
    fn exact_context_scores_best_or_equal(
        workload_idx in 0usize..WORKLOADS.len(),
        config_idx in 0usize..CONFIGS.len(),
        seed in 0u64..8,
    ) {
        let workload = (WORKLOADS[workload_idx].build)(&tiny_params()).expect("tiny params are valid");
        let mut exact_ctx = ExactCtx::new();
        let exact = workload.run(seed, &mut exact_ctx).score;
        let mut approx_ctx = OperatorCtx::for_config(&CONFIGS[config_idx]);
        let approx = workload.run(seed, &mut approx_ctx).score;
        match (exact, approx) {
            (QualityScore::SuccessRate(e), QualityScore::SuccessRate(a)) => {
                prop_assert!(
                    e + 0.02 >= a,
                    "{}: exact {e} far below approx {a}",
                    workload.fingerprint()
                );
            }
            _ => prop_assert!(
                exact >= approx,
                "{}: exact {:?} lost to approx {:?}",
                workload.fingerprint(),
                exact,
                approx
            ),
        }
    }

    /// Same seed, same workload, fresh contexts: bit-identical runs —
    /// the purity guarantee the content-addressed app-sweep cache rests
    /// on.
    #[test]
    fn runs_are_pure_functions_of_the_seed(
        workload_idx in 0usize..WORKLOADS.len(),
        config_idx in 0usize..CONFIGS.len(),
        seed in 0u64..8,
    ) {
        let workload = (WORKLOADS[workload_idx].build)(&tiny_params()).expect("tiny params are valid");
        let mut a = OperatorCtx::for_config(&CONFIGS[config_idx]);
        let mut b = OperatorCtx::for_config(&CONFIGS[config_idx]);
        let run_a = workload.run(seed, &mut a);
        let run_b = workload.run(seed, &mut b);
        prop_assert_eq!(&run_a, &run_b, "{}", workload.fingerprint());
        prop_assert_eq!(
            run_a.score.value().to_bits(),
            run_b.score.value().to_bits()
        );
    }
}
