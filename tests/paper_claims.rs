//! The paper's qualitative conclusions, encoded as tests. These are the
//! "shape" checks of the reproduction: who wins, in which metric, and by
//! roughly what kind of margin.

use apxperf::operators::{FaType, OperatorCtx};
use apxperf::prelude::*;

fn quick_chz(lib: &Library) -> Characterizer<'_> {
    Characterizer::new(lib).with_settings(CharacterizerSettings {
        error_samples: 30_000,
        verify_samples: 300,
        exhaustive_up_to_bits: 12,
        power_vectors: 400,
        seed: 99,
    })
}

/// §IV, Fig. 3: for the MSE metric, fixed-point sizing dominates the
/// approximate adders on power at comparable accuracy.
#[test]
fn fig3_shape_fxp_dominates_mse_vs_power() {
    let lib = Library::fdsoi28();
    let mut chz = quick_chz(&lib);
    // a mid-accuracy FxP point
    let fxp = chz.characterize(&OperatorConfig::AddTrunc { n: 16, q: 12 });
    // approximate adders at comparable power budgets
    for approx in [
        OperatorConfig::EtaIv { n: 16, x: 4 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 8,
            fa_type: FaType::Two,
        },
    ] {
        let a = chz.characterize(&approx);
        assert!(
            fxp.error.mse_db < a.error.mse_db && fxp.hw.power_mw < a.hw.power_mw,
            "{}: FxP ({:.1} dB, {:.4} mW) must dominate ({:.1} dB, {:.4} mW)",
            a.name,
            fxp.error.mse_db,
            fxp.hw.power_mw,
            a.error.mse_db,
            a.hw.power_mw
        );
    }
}

/// §IV, Fig. 4: on BER the approximate adders win — truncation forces
/// dropped bits to zero (~50 % flips each).
#[test]
fn fig4_shape_approx_wins_ber() {
    let lib = Library::fdsoi28();
    let mut chz = quick_chz(&lib);
    let fxp = chz.characterize(&OperatorConfig::AddTrunc { n: 16, q: 8 });
    let aca = chz.characterize(&OperatorConfig::Aca { n: 16, p: 8 });
    assert!(
        aca.error.ber < fxp.error.ber / 10.0,
        "ACA BER {} must be far below truncated BER {}",
        aca.error.ber,
        fxp.error.ber
    );
}

/// §IV, Table I: MULt is the most accurate fixed-width multiplier; the
/// uncorrected pruned Booth is catastrophically MSE-inaccurate while its
/// BER stays in the same ballpark as the others.
#[test]
fn table1_shape_multiplier_accuracy_ordering() {
    let lib = Library::fdsoi28();
    let mut chz = quick_chz(&lib);
    let mult = chz.characterize(&OperatorConfig::MulTrunc { n: 16, q: 16 });
    let aam = chz.characterize(&OperatorConfig::Aam { n: 16 });
    let abmu = chz.characterize(&OperatorConfig::AbmUncorrected { n: 16 });
    assert!(mult.error.mse_db <= aam.error.mse_db, "MULt most accurate");
    assert!(
        abmu.error.mse_db > mult.error.mse_db + 60.0,
        "uncorrected ABM ~7 orders worse: {} vs {}",
        abmu.error.mse_db,
        mult.error.mse_db
    );
    assert!(aam.hw.area_um2 < mult.hw.area_um2, "AAM is smaller");
}

/// §V: the partner-multiplier mechanism — an approximate adder keeps a
/// full-width data-path, a sized adder shrinks it several-fold.
#[test]
fn tables_3_to_6_shape_hidden_cost_of_full_width_datapath() {
    let lib = Library::fdsoi28();
    let mut chz = quick_chz(&lib);
    let sized = appenergy::model_for_adder(&mut chz, &OperatorConfig::AddTrunc { n: 16, q: 10 });
    let approx = appenergy::model_for_adder(&mut chz, &OperatorConfig::Aca { n: 16, p: 12 });
    assert!(
        approx.mult_pdp_pj > 3.0 * sized.mult_pdp_pj,
        "full-width partner multiplier ({} pJ) must dwarf the sized one ({} pJ)",
        approx.mult_pdp_pj,
        sized.mult_pdp_pj
    );
}

/// §V-D, Table VI: the broken ABM collapses K-means to near the
/// MULt(16,4) level while AAM stays at MULt-level accuracy.
#[test]
fn table6_shape_abm_collapse() {
    let fixture = KmeansFixture::synthetic(10, 300, 5);
    let run = |config: OperatorConfig| {
        let mut ctx = OperatorCtx::with_multiplier(config.build());
        fixture.run(&mut ctx).score.value()
    };
    let mult = run(OperatorConfig::MulTrunc { n: 16, q: 16 });
    let aam = run(OperatorConfig::Aam { n: 16 });
    let abmu = run(OperatorConfig::AbmUncorrected { n: 16 });
    let tiny = run(OperatorConfig::MulTrunc { n: 16, q: 4 });
    assert!(mult > 0.95 && aam > 0.95, "MULt {mult}, AAM {aam}");
    assert!(abmu < 0.5, "ABMu collapses: {abmu}");
    assert!(tiny < 0.5, "MULt(16,4) collapses too: {tiny}");
}

/// §V-A, Fig. 5: at the application level, fixed-point sizing beats every
/// approximate adder: for a similar PSNR the sized data-path needs less
/// energy.
#[test]
fn fig5_shape_fxp_dominates_fft_energy() {
    let lib = Library::fdsoi28();
    let mut chz = quick_chz(&lib);
    let fixture = FftFixture::radix2_32(17);

    let run = |chz: &mut Characterizer<'_>, config: OperatorConfig| {
        let model = appenergy::model_for_adder(chz, &config);
        let mut ctx = OperatorCtx::with_adder(config.build());
        let result = fixture.run(&mut ctx);
        (result.score.value(), model.energy_pj(result.counts))
    };
    let (psnr_fxp, e_fxp) = run(&mut chz, OperatorConfig::AddTrunc { n: 16, q: 12 });
    let (psnr_apx, e_apx) = run(&mut chz, OperatorConfig::EtaIv { n: 16, x: 4 });
    // the sized version reaches at least comparable quality for much less
    assert!(
        psnr_fxp > 25.0,
        "sized adder keeps the FFT usable: {psnr_fxp}"
    );
    assert!(
        e_apx > 2.0 * e_fxp,
        "approximate data-path energy {e_apx} must dwarf sized {e_fxp} (PSNR {psnr_apx} vs {psnr_fxp})"
    );
}
