//! End-to-end integration: every crate of the workspace participates —
//! fixture → operators → netlist/cells → metrics → apps → core.

use apxperf::operators::OperatorCtx;
use apxperf::prelude::*;

#[test]
fn full_characterization_pipeline_runs_and_fuses() {
    let lib = Library::fdsoi28();
    let mut chz = Characterizer::new(&lib).with_settings(CharacterizerSettings {
        error_samples: 10_000,
        verify_samples: 500,
        exhaustive_up_to_bits: 16,
        power_vectors: 200,
        seed: 1,
    });
    let report = chz.characterize(&OperatorConfig::EtaIv { n: 16, x: 4 });
    assert!(report.verified, "netlist must match the functional model");
    assert!(report.error.error_rate > 0.0 && report.error.error_rate < 1.0);
    assert!(report.hw.area_um2 > 0.0 && report.hw.delay_ns > 0.0);
    // JSON round-trip through serde (floats compared with tolerance:
    // serde_json's shortest-representation printing can drop an ulp)
    let json = report.to_json().unwrap();
    let back: OperatorReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.config, report.config);
    assert_eq!(back.name, report.name);
    assert_eq!(back.verified, report.verified);
    assert!((back.error.mse - report.error.mse).abs() < 1e-9);
    assert!((back.hw.pdp_pj - report.hw.pdp_pj).abs() < 1e-12);
}

#[test]
fn application_energy_pipeline_composes() {
    let lib = Library::fdsoi28();
    let mut chz = Characterizer::new(&lib).with_settings(CharacterizerSettings {
        error_samples: 2_000,
        verify_samples: 200,
        exhaustive_up_to_bits: 12,
        power_vectors: 150,
        seed: 2,
    });
    let config = OperatorConfig::AddTrunc { n: 16, q: 12 };
    let model = appenergy::model_for_adder(&mut chz, &config);
    let fixture = FftFixture::radix2_32(3);
    let mut ctx = OperatorCtx::with_adder(config.build());
    let result = fixture.run(&mut ctx);
    let energy = model.energy_pj(result.counts);
    assert!(energy > 0.0);
    assert!(
        result.score.value() > 20.0,
        "12 kept bits keeps the FFT usable"
    );
}

#[test]
fn all_sweep_operators_verify_against_their_netlists() {
    // the Verification box of APXPERF over the §IV sweep, at reduced width
    let lib = Library::fdsoi28();
    let mut chz = Characterizer::new(&lib).with_settings(CharacterizerSettings {
        error_samples: 500,
        verify_samples: 800,
        exhaustive_up_to_bits: 16,
        power_vectors: 50,
        seed: 4,
    });
    for config in apxperf::core::sweeps::all_adders_16bit()
        .into_iter()
        .step_by(7)
        .chain(apxperf::core::sweeps::multipliers_16bit())
    {
        let report = chz.characterize(&config);
        assert!(report.verified, "{} failed verification", report.name);
    }
}

#[test]
fn pgm_and_json_artifacts_are_writable() {
    let img = apxperf::fixture::image::synthetic_photo(32, 32, 7);
    let pgm = img.to_pgm();
    assert!(pgm.len() > 32 * 32);
    let cloud = apxperf::fixture::clusters::gaussian_clusters(3, 10, 500.0, 1);
    let json = serde_json::to_string(&cloud).unwrap();
    assert!(json.contains("points"));
}
